"""Unit tests for the serving tier's shared state: registry, admission,
metrics -- the pieces under the ``serve-*`` latches.

The live-server behaviour (threads, sockets, drains) is covered by
``tests/test_serve_oracle.py``; here each component's protocol is pinned
in isolation: lease counting, the reload swap-and-drain dance, admission
capacity/drain rejections and budget forking, and the metrics counters.
"""

import json
import threading

import pytest

from repro.datasets.dblp import dblp
from repro.prix.budget import QueryBudget
from repro.prix.index import IndexOptions, PrixIndex
from repro.serve.admission import AdmissionController, ServerLimits
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import ProtocolError
from repro.serve.registry import IndexRegistry, ServeError
from repro.storage import scrub_path


@pytest.fixture
def index_path(tmp_path):
    path = str(tmp_path / "serve.prix")
    index = PrixIndex.build(dblp(n_records=12, seed=7),
                            IndexOptions(path=path))
    index.save()
    index.close()
    return path


# ---------------------------------------------------------------- registry

def test_mount_lease_query_and_close(index_path):
    registry = IndexRegistry()
    assert registry.mount("default", index_path) == 1
    with registry.lease("default") as mount:
        assert mount.generation == 1
        matches = mount.index.query("//article/author")
        assert len(matches) > 0
    assert registry.describe()["default"]["leases"] == 0
    registry.close_all()
    assert registry.describe() == {}


def test_mount_rejects_duplicates_and_lease_rejects_unknown(index_path):
    registry = IndexRegistry()
    registry.mount("default", index_path)
    with pytest.raises(ServeError):
        registry.mount("default", index_path)
    with pytest.raises(ProtocolError) as caught:
        registry.lease("nope")
    assert caught.value.code == "not-found"
    registry.close_all()


def test_reload_swaps_generation_and_drains_old(index_path):
    registry = IndexRegistry()
    registry.mount("default", index_path)
    with registry.lease("default") as mount:
        before = mount.index.query("//article/author")

    # Hold a lease on generation 1 while the reload happens in another
    # thread: the reload must swap immediately but only close the old
    # generation after the lease is released.
    lease = registry.lease("default")
    old_mount = lease.__enter__()
    done = threading.Event()
    outcome = {}

    def reloader():
        outcome["generation"] = registry.reload("default", timeout=10.0)
        done.set()

    thread = threading.Thread(target=reloader)
    thread.start()
    # New queries see generation 2 while the old lease is still alive.
    deadline_guard = 0
    while registry.describe()["default"]["generation"] != 2:
        deadline_guard += 1
        assert deadline_guard < 10_000
    assert not done.is_set()
    # The leased old generation still answers identically: its pages
    # cannot be closed under a live query.
    assert old_mount.index.query("//article/author") == before
    lease.__exit__(None, None, None)
    thread.join(10.0)
    assert done.is_set()
    assert outcome["generation"] == 2

    with registry.lease("default") as mount:
        assert mount.generation == 2
        assert mount.index.query("//article/author") == before
    registry.close_all()


def test_reload_times_out_but_keeps_new_generation_live(index_path):
    registry = IndexRegistry()
    registry.mount("default", index_path)
    lease = registry.lease("default")
    lease.__enter__()
    with pytest.raises(ServeError, match="still has leases"):
        registry.reload("default", timeout=0.05)
    # The swap already happened; the stuck generation leaks, the new one
    # serves.
    with registry.lease("default") as mount:
        assert mount.generation == 2
    lease.__exit__(None, None, None)
    registry.close_all()


def test_reload_timeout_leaks_generation_then_reaps_on_release(index_path):
    """The drain-timeout leak branch, end to end: a stuck lease leaks
    the old generation (visible in the ``leaked()`` ledger the server
    merges into ``/metrics``), the new generation keeps serving, and
    the *last* release of the stuck lease closes and reaps the leak."""
    registry = IndexRegistry()
    registry.mount("default", index_path)
    with registry.lease("default") as mount:
        before = mount.index.query("//article/author")

    lease = registry.lease("default")
    old_mount = lease.__enter__()
    with pytest.raises(ServeError, match="leaks until its queries finish"):
        registry.reload("default", timeout=0.05)
    assert registry.leaked() == [
        {"name": "default", "generation": 1, "leases": 1}]
    # The leaked generation still answers under its live lease...
    assert old_mount.index.query("//article/author") == before
    # ...while new traffic is already on generation 2.
    with registry.lease("default") as mount:
        assert mount.generation == 2
        assert mount.index.query("//article/author") == before
    # Releasing the stuck lease reaps (closes + delists) the leak.
    lease.__exit__(None, None, None)
    assert registry.leaked() == []
    registry.close_all()


def test_rescrub_refreshes_health_and_returns_verdict(index_path):
    registry = IndexRegistry()
    registry.mount("default", index_path)
    assert registry.rescrub("default") is True
    health = registry.health()["default"]
    assert health["healthy"] is True
    assert health["scrub"] == json.loads(scrub_path(index_path).to_json())
    with pytest.raises(KeyError):
        registry.rescrub("nope")
    registry.close_all()


def test_reload_unknown_name_raises_keyerror(index_path):
    registry = IndexRegistry()
    with pytest.raises(KeyError):
        registry.reload("nope")


def test_health_caches_the_scrub_to_json_serialization(index_path):
    registry = IndexRegistry()
    registry.mount("default", index_path)
    health = registry.health()["default"]
    assert health["healthy"] is True
    assert health["generation"] == 1
    # The cached verdict is exactly the canonical ScrubReport.to_json
    # of the mounted file -- the single serializer shared with
    # `prix scrub --json` (docs/SERVING.md).
    assert health["scrub"] == json.loads(scrub_path(index_path).to_json())
    registry.close_all()


def test_registry_stats_snapshot_per_mount(index_path):
    registry = IndexRegistry()
    registry.mount("default", index_path, backend="file")
    with registry.lease("default") as mount:
        mount.index.query("//article/author")
    stats = registry.stats()["default"]
    assert stats["logical_reads"] > 0
    assert stats["evictions"] == 0
    registry.close_all()


# --------------------------------------------------------------- admission

def test_admit_forks_a_fresh_budget_per_request():
    template = QueryBudget(max_candidates=5, deadline_seconds=1.0)
    admission = AdmissionController(ServerLimits(budget=template))
    with admission.admit() as first:
        with admission.admit() as second:
            assert first == template
            assert first is not template
            assert first is not second
            assert admission.inflight() == 2
    assert admission.inflight() == 0


def test_admit_rejects_over_capacity_without_leaking_slots():
    admission = AdmissionController(ServerLimits(max_inflight=1))
    gate = admission.admit()
    gate.__enter__()
    with pytest.raises(ProtocolError) as caught:
        with admission.admit():
            pass
    assert caught.value.code == "over-capacity"
    assert caught.value.http_status == 503
    gate.__exit__(None, None, None)
    # The rejected request must not have consumed the freed slot.
    with admission.admit():
        assert admission.inflight() == 1


def test_draining_rejects_new_queries_and_wait_drains():
    admission = AdmissionController()
    gate = admission.admit()
    gate.__enter__()
    admission.begin_drain()
    with pytest.raises(ProtocolError) as caught:
        with admission.admit():
            pass
    assert caught.value.code == "draining"
    assert not admission.wait_drained(timeout=0.05)  # one still running
    gate.__exit__(None, None, None)
    assert admission.wait_drained(timeout=5.0)
    assert admission.inflight() == 0


def test_budget_fork_is_a_fresh_meter_with_same_limits():
    budget = QueryBudget(max_range_queries=2, max_physical_reads=3,
                         max_candidates=4, deadline_seconds=5.0)
    fork = budget.fork()
    assert fork == budget and fork is not budget
    assert QueryBudget().fork().unlimited


# ----------------------------------------------------------------- metrics

def test_metrics_counters_accumulate_per_endpoint():
    metrics = ServerMetrics()
    metrics.observe("/query", 0.002)
    metrics.observe("/query", 0.010, degraded=True)
    metrics.observe("/query", 0.001, error_code="over-capacity",
                    rejected=True)
    metrics.observe("/healthz", 0.0005)
    metrics.set_inflight(3)

    snap = metrics.snapshot()
    assert snap["inflight"] == 3
    query = snap["endpoints"]["/query"]
    assert query["requests"] == 3
    assert query["degraded"] == 1
    assert query["rejected"] == 1
    assert query["errors"] == {"over-capacity": 1}
    assert query["latency_seconds_max"] == pytest.approx(0.010)
    assert query["latency_seconds_total"] == pytest.approx(0.013)
    assert snap["endpoints"]["/healthz"]["requests"] == 1
    assert snap["uptime_seconds"] >= 0


def test_metrics_named_events_accumulate_sorted():
    metrics = ServerMetrics()
    for name in ("circuit-open", "circuit-close", "circuit-open"):
        metrics.record_event(name)
    snap = metrics.snapshot()
    assert snap["events"] == {"circuit-close": 1, "circuit-open": 2}
    assert list(snap["events"]) == sorted(snap["events"])
    assert ServerMetrics().snapshot()["events"] == {}
