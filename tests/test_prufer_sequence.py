"""Prufer sequence construction tests, anchored to the paper's examples."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_random_tree
from repro.prufer.sequence import extended_sequence, regular_sequence
from repro.xmlkit.tree import (DUMMY_TAG, Document, element,
                               extend_with_dummies, sequence_label, value)


class TestPaperExample1:
    """Example 1: the tree of Figure 2(a)."""

    def test_lps_matches_paper(self, fig2_doc):
        seq = regular_sequence(fig2_doc)
        assert " ".join(seq.lps) == "A C B C C B A C A E E E D A"

    def test_nps_matches_paper(self, fig2_doc):
        seq = regular_sequence(fig2_doc)
        assert list(seq.nps) == [15, 3, 7, 6, 6, 7, 15, 9, 15,
                                 13, 13, 13, 14, 15]

    def test_length_is_n_minus_one(self, fig2_doc):
        seq = regular_sequence(fig2_doc)
        assert len(seq) == fig2_doc.size - 1 == 14

    def test_leaf_list_contains_paper_leaves(self, fig2_doc):
        seq = regular_sequence(fig2_doc)
        leaves = set(seq.leaves)
        # Example 6 lists these leaves explicitly.
        for pair in [("D", 2), ("D", 4), ("E", 5), ("G", 10),
                     ("F", 11), ("F", 12)]:
            assert pair in leaves


class TestQueryExample2:
    """Example 2: the query twig of Figure 2(b)."""

    def test_query_sequences(self):
        root = element("A")
        b = element("B")
        b.append(element("C"))
        d = element("D")
        e = element("E")
        e.append(element("F"))
        d.append(e)
        root.append(b)
        root.append(d)
        seq = regular_sequence(Document(root))
        assert " ".join(seq.lps) == "B A E D A"
        assert list(seq.nps) == [2, 6, 4, 5, 6]

    def test_subsequence_of_data_lps(self, fig2_doc):
        """Theorem 1 on the paper's own pair: LPS(Q) <= LPS(T)."""
        data = regular_sequence(fig2_doc).lps
        query = ("B", "A", "E", "D", "A")
        position = 0
        for label in data:
            if position < len(query) and label == query[position]:
                position += 1
        assert position == len(query)


class TestLemma1:
    """The node deleted i-th is the node numbered i."""

    def test_nps_entry_is_parent_number(self):
        rng = random.Random(17)
        for _ in range(25):
            doc = Document(make_random_tree(rng))
            seq = regular_sequence(doc)
            for number, parent_number in enumerate(seq.nps, start=1):
                node = doc.node_by_postorder(number)
                assert node.parent.postorder == parent_number

    def test_parent_of_accessor(self):
        rng = random.Random(18)
        doc = Document(make_random_tree(rng))
        seq = regular_sequence(doc)
        for node in doc.nodes_in_postorder():
            if node.parent is None:
                assert seq.parent_of(node.postorder) == 0
            else:
                assert seq.parent_of(node.postorder) == \
                    node.parent.postorder


class TestRegularSequenceShape:
    def test_leaf_labels_absent_from_lps(self):
        root = element("a")
        root.append(element("uniqueleaf"))
        seq = regular_sequence(Document(root))
        assert "uniqueleaf" not in seq.lps

    def test_single_node_document(self):
        doc = Document(element("only"))
        seq = regular_sequence(doc)
        assert len(seq) == 0
        assert seq.leaves == (("only", 1),)

    def test_value_labels_marked(self):
        root = element("a")
        root.append(value("txt"))
        b = element("b")
        root.append(b)
        seq = regular_sequence(Document(root))
        assert seq.leaves[0][0] == sequence_label(value("txt"))


class TestExtendedSequence:
    def test_all_original_labels_present(self):
        rng = random.Random(19)
        for _ in range(15):
            doc = Document(make_random_tree(rng))
            seq = extended_sequence(doc)
            labels = set(seq.lps)
            for node in doc.nodes_in_postorder():
                assert sequence_label(node) in labels

    def test_dummy_never_a_label(self):
        rng = random.Random(20)
        doc = Document(make_random_tree(rng))
        seq = extended_sequence(doc)
        assert DUMMY_TAG not in seq.lps

    def test_length_grows_by_leaf_count(self):
        rng = random.Random(21)
        for _ in range(15):
            doc = Document(make_random_tree(rng))
            regular = regular_sequence(doc)
            extended = extended_sequence(doc)
            n_leaves = len(regular.leaves)
            assert len(extended) == len(regular) + n_leaves

    def test_extended_flag(self):
        doc = Document(element("a"))
        assert extended_sequence(doc).extended
        assert not regular_sequence(doc).extended


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_theorem1_subgraph_subsequence(seed):
    """Theorem 1: a connected subtree's LPS is a subsequence of the
    tree's LPS (with matching labels)."""
    rng = random.Random(seed)
    doc = Document(make_random_tree(rng, max_nodes=20))

    # Pick a random connected subtree Q of the data tree.
    nodes = doc.nodes_in_postorder()
    subtree_root = rng.choice(nodes)
    chosen = {id(subtree_root)}
    frontier = [subtree_root]
    while frontier and len(chosen) < 8:
        node = frontier.pop(rng.randrange(len(frontier)))
        for child in node.children:
            if rng.random() < 0.6:
                chosen.add(id(child))
                frontier.append(child)

    def build_q(node):
        clone = element(node.tag) if not node.is_value else value(node.tag)
        for child in node.children:
            if id(child) in chosen:
                child_clone = build_q(child)
                child_clone.parent = clone
                clone.children.append(child_clone)
        return clone

    q_doc = Document(build_q(subtree_root))
    query_lps = regular_sequence(q_doc).lps
    data_lps = regular_sequence(doc).lps
    position = 0
    for label in data_lps:
        if position < len(query_lps) and label == query_lps[position]:
            position += 1
    assert position == len(query_lps), (
        "false dismissal: subtree LPS is not a subsequence")
