"""prixflow tests: CFG construction, the engine, and the four flow rules.

CFG assertions are behavioral -- "every path from entry to the exit
passes through the finally body", "the exception edge of a call reaches
the handler" -- rather than structural, so the builder is free to change
its node layout without breaking the suite.
"""

import ast
import textwrap

import pytest

from repro.analysis.core import SourceFile, check_source
from repro.analysis.flow import (FLOW_RULES, CallGraph, build_cfg,
                                 run_forward)
from repro.analysis.flow.cfg import EXC_CALL, EXC_RAISE
from repro.analysis.flow.rules import (CloseOnAllPathsRule,
                                       DirtyPageEscapeRule,
                                       LENIENT_REASONS,
                                       PinUnpinBalanceRule,
                                       STRICT_REASONS,
                                       StatsReadBeforeFlushRule)
from repro.analysis.rules_io import _tracked_constructor

STORAGE_PATH = "src/repro/storage/bptree.py"


def findings(code, rules=FLOW_RULES, path=STORAGE_PATH):
    source = SourceFile(path, textwrap.dedent(code))
    return check_source(source, list(rules))


def rule_names(code, rules=FLOW_RULES, path=STORAGE_PATH):
    return [finding.rule for finding in findings(code, rules, path)]


def cfg_of(code):
    # Strip the leading newline so ``def`` sits on line 1 and the line
    # numbers asserted below can be read off the snippet directly.
    tree = ast.parse(textwrap.dedent(code).lstrip("\n"))
    func = next(node for node in ast.walk(tree)
                if isinstance(node, ast.FunctionDef))
    return build_cfg(func)


def reachable(cfg, start, live_reasons=STRICT_REASONS, blocked=()):
    """Nodes reachable from ``start``, never passing through ``blocked``."""
    seen = set()
    stack = [start]
    blocked = set(blocked)
    while stack:
        node = stack.pop()
        if node in seen or node in blocked:
            continue
        seen.add(node)
        stack.extend(node.successors(live_reasons))
    return seen


def nodes_on_line(cfg, lineno):
    return [node for node in cfg.nodes if node.line == lineno]


class TestCFGShapes:
    def test_straight_line(self):
        cfg = cfg_of("""
            def f(x):
                y = x + 1
                return y
        """)
        assert cfg.exit in reachable(cfg, cfg.entry)
        # No calls, no raises: the raise-exit is unreachable.
        assert cfg.raise_exit not in reachable(cfg, cfg.entry)

    def test_call_has_exception_edge_with_reason(self):
        cfg = cfg_of("""
            def f(x):
                y = g(x)
                return y
        """)
        (call_node,) = nodes_on_line(cfg, 2)
        assert call_node.exc is not None
        assert call_node.exc[1] == EXC_CALL
        # Lenient analyses ignore call edges; strict ones follow them.
        assert cfg.raise_exit not in reachable(cfg, cfg.entry,
                                               LENIENT_REASONS)
        assert cfg.raise_exit in reachable(cfg, cfg.entry, STRICT_REASONS)

    def test_return_inside_try_runs_finally(self):
        cfg = cfg_of("""
            def f(pool):
                try:
                    return 1
                finally:
                    pool.release()
        """)
        # Every path from entry to exit passes through the finally body:
        # blocking line 5 must make the exit unreachable.
        finally_nodes = nodes_on_line(cfg, 5)
        assert finally_nodes
        assert cfg.exit not in reachable(cfg, cfg.entry,
                                         blocked=finally_nodes)
        assert cfg.exit in reachable(cfg, cfg.entry)

    def test_exception_in_try_runs_finally_before_escaping(self):
        cfg = cfg_of("""
            def f(pool, x):
                try:
                    use(x)
                finally:
                    pool.release()
        """)
        finally_nodes = nodes_on_line(cfg, 5)
        assert cfg.raise_exit not in reachable(cfg, cfg.entry,
                                               blocked=finally_nodes)

    def test_finally_copies_are_distinct_per_exit_kind(self):
        cfg = cfg_of("""
            def f(pool, cond):
                try:
                    if cond:
                        return 1
                    use(cond)
                finally:
                    pool.release()
                return 2
        """)
        # Return, exception and normal completion each get their own
        # inlined finally copy backed by the same AST statement.
        assert len(nodes_on_line(cfg, 7)) >= 3

    def test_break_routes_through_finally_to_loop_exit(self):
        cfg = cfg_of("""
            def f(pool, items):
                for item in items:
                    try:
                        if item:
                            break
                    finally:
                        pool.release(item)
                done()
        """)
        finally_nodes = nodes_on_line(cfg, 7)
        after_nodes = nodes_on_line(cfg, 8)
        assert after_nodes
        # done() is only reachable through a finally copy (break path and
        # the loop's normal exhaustion both pass line 7... the latter
        # does not, so only assert the break path specifically: blocking
        # the finally leaves the loop-exhaustion route open).
        assert cfg.exit in reachable(cfg, cfg.entry)
        # The break statement's successor chain reaches line 8.
        (break_node,) = [node for node in cfg.nodes
                         if node.kind == "break"]
        assert any(node in reachable(cfg, break_node)
                   for node in after_nodes)
        assert any(node in reachable(cfg, break_node)
                   for node in finally_nodes)

    def test_continue_exception_edges_inside_try(self):
        cfg = cfg_of("""
            def f(pool, items):
                for item in items:
                    try:
                        continue
                    finally:
                        pool.release(item)
        """)
        (continue_node,) = [node for node in cfg.nodes
                            if node.kind == "continue"]
        head = [node for node in cfg.nodes if node.kind == "loop-head"]
        assert head
        # continue flows through the finally copy back to the loop head.
        finally_nodes = nodes_on_line(cfg, 6)
        assert any(node in reachable(cfg, continue_node)
                   for node in finally_nodes)
        assert head[0] in reachable(cfg, continue_node)

    def test_nested_with_releases_in_reverse_order(self):
        cfg = cfg_of("""
            def f(path):
                with Pager.open(path) as p, BufferPool(p) as pool:
                    pool.new_page()
        """)
        exits = [node for node in cfg.nodes if node.kind == "with-exit"]
        # Two items, released on the normal path; exception paths add
        # further copies.
        assert len(exits) >= 2
        items = {node.item.optional_vars.id for node in exits
                 if node.item.optional_vars is not None}
        assert items == {"p", "pool"}

    def test_except_handler_catches_call_exception(self):
        cfg = cfg_of("""
            def f(x):
                try:
                    use(x)
                except ValueError:
                    handle(x)
        """)
        handler_nodes = nodes_on_line(cfg, 5)
        assert handler_nodes
        (call_node,) = nodes_on_line(cfg, 3)
        assert any(node in reachable(cfg, call_node)
                   for node in handler_nodes)
        # ValueError alone is not exhaustive: the exception can escape.
        assert cfg.raise_exit in reachable(cfg, call_node)

    def test_bare_except_is_exhaustive(self):
        cfg = cfg_of("""
            def f(x):
                try:
                    use(x)
                except Exception:
                    pass
        """)
        assert cfg.raise_exit not in reachable(cfg, cfg.entry)

    def test_while_loop_with_orelse(self):
        cfg = cfg_of("""
            def f(n):
                while n > 0:
                    n -= 1
                else:
                    finish(n)
                return n
        """)
        assert cfg.exit in reachable(cfg, cfg.entry)


class TestEngine:
    def test_fixpoint_on_loop(self):
        cfg = cfg_of("""
            def f(pool, items):
                for item in items:
                    pool.touch(item)
        """)

        def transfer(node, state):
            return state | {node.kind} if node.kind == "loop-head" \
                else state

        flow = run_forward(cfg, transfer, LENIENT_REASONS)
        assert flow.reached(cfg.exit)
        assert "loop-head" in flow.before(cfg.exit)

    def test_exception_edge_carries_prestate_by_default(self):
        cfg = cfg_of("""
            def f(x):
                token = acquire(x)
                release(token)
        """)

        def transfer(node, state):
            if node.line == 2:
                return state | {"token"}
            if node.line == 3:
                return state - {"token"}
            return state

        flow = run_forward(cfg, transfer, STRICT_REASONS)
        # release(token) may raise before releasing: pre-state flows.
        assert "token" in flow.before(cfg.raise_exit)

    def test_transfer_exc_overrides_exception_flow(self):
        cfg = cfg_of("""
            def f(x):
                token = acquire(x)
                release(token)
        """)

        def transfer(node, state):
            if node.line == 2:
                return state | {"token"}
            if node.line == 3:
                return state - {"token"}
            return state

        def transfer_exc(node, state):
            return state - {"token"} if node.line == 3 else state

        flow = run_forward(cfg, transfer, STRICT_REASONS,
                           transfer_exc=transfer_exc)
        assert "token" not in flow.before(cfg.raise_exit)


class TestCallGraph:
    def test_returns_handle_direct_and_chained(self):
        tree = ast.parse(textwrap.dedent("""
            def make_pager(path):
                return Pager.open(path)

            def make_pool(path):
                pager = make_pager(path)
                return BufferPool(pager)

            def unrelated():
                return 42
        """))
        graph = CallGraph(tree, _tracked_constructor)
        assert graph.returns_handle("make_pager")
        assert graph.returns_handle("make_pool")
        assert not graph.returns_handle("unrelated")
        assert "make_pager" in graph.calls("make_pool")

    def test_factory_call_counts_as_acquisition(self):
        code = """
            def make_pool(path):
                return BufferPool(Pager.open(path))

            def leaky(path, cond):
                pool = make_pool(path)
                if cond:
                    return None
                pool.close()
                return 1
        """
        assert rule_names(code, [CloseOnAllPathsRule]) == \
            ["close-on-all-paths"]


class TestPinUnpinBalance:
    LEAKY = """
        def copy_record(pool, pid):
            frame = pool.pin(pid)
            data = bytes(frame)
            pool.unpin(pid)
            return data
    """
    FINALLY_TWIN = """
        def copy_record(pool, pid):
            frame = pool.pin(pid)
            try:
                data = bytes(frame)
            finally:
                pool.unpin(pid)
            return data
    """

    def test_leaky_fixture_flagged(self):
        names = rule_names(self.LEAKY, [PinUnpinBalanceRule])
        assert names == ["pin-unpin-balance"]

    def test_finally_correct_twin_passes(self):
        assert rule_names(self.FINALLY_TWIN, [PinUnpinBalanceRule]) == []

    def test_pinned_context_manager_passes(self):
        code = """
            def copy_record(pool, pid):
                with pool.pinned(pid) as frame:
                    return bytes(frame)
        """
        assert rule_names(code, [PinUnpinBalanceRule]) == []

    def test_early_return_between_pin_and_unpin_flagged(self):
        code = """
            def peek(pool, pid, cond):
                frame = pool.pin(pid)
                if cond:
                    return None
                pool.unpin(pid)
                return bytes(frame)
        """
        assert rule_names(code, [PinUnpinBalanceRule]) == \
            ["pin-unpin-balance"]

    def test_attribute_receiver_balanced(self):
        code = """
            def touch(self, pid):
                frame = self._pool.pin(pid)
                try:
                    frame[0] = 1
                finally:
                    self._pool.unpin(pid)
        """
        assert rule_names(code, [PinUnpinBalanceRule]) == []

    def test_mismatched_page_argument_flagged(self):
        code = """
            def swap(pool, a, b):
                pool.pin(a)
                pool.unpin(b)
        """
        assert rule_names(code, [PinUnpinBalanceRule]) == \
            ["pin-unpin-balance"]

    def test_finding_suppressible(self):
        code = """
            def copy_record(pool, pid):
                frame = pool.pin(pid)  # prixlint: disable=pin-unpin-balance
                return bytes(frame)
        """
        assert rule_names(code, [PinUnpinBalanceRule]) == []


class TestCloseOnAllPaths:
    def test_early_return_leak_flagged(self):
        code = """
            def load(path, cond):
                pager = Pager.open(path)
                if cond:
                    return None
                pager.close()
                return 1
        """
        assert rule_names(code, [CloseOnAllPathsRule]) == \
            ["close-on-all-paths"]

    def test_with_statement_passes(self):
        code = """
            def load(path, cond):
                with Pager.open(path) as pager:
                    if cond:
                        return None
                return 1
        """
        assert rule_names(code, [CloseOnAllPathsRule]) == []

    def test_try_finally_passes(self):
        code = """
            def load(path, cond):
                pager = Pager.open(path)
                try:
                    if cond:
                        return None
                finally:
                    pager.close()
                return 1
        """
        assert rule_names(code, [CloseOnAllPathsRule]) == []

    def test_never_closed_left_to_resource_safety(self):
        # No release anywhere: that is the flow-insensitive rule's
        # finding, not a path bug -- prixflow stays quiet.
        code = """
            def load(path):
                pager = Pager.open(path)
                return pager.num_pages
        """
        assert rule_names(code, [CloseOnAllPathsRule]) == []

    def test_escape_transfers_ownership(self):
        code = """
            def load(path, cond):
                pager = Pager.open(path)
                if cond:
                    return pager
                pager.close()
                return None
        """
        assert rule_names(code, [CloseOnAllPathsRule]) == []


class TestDirtyPageEscape:
    def test_dirty_early_return_flagged(self):
        code = """
            def write(pager, pid, img, cond):
                pool = BufferPool(pager)
                pool.put(pid, img)
                if cond:
                    return
                pool.flush()
                pool.close()
        """
        assert "dirty-page-escape" in rule_names(code,
                                                 [DirtyPageEscapeRule])

    def test_flush_on_every_path_passes(self):
        code = """
            def write(pager, pid, img, cond):
                pool = BufferPool(pager)
                pool.put(pid, img)
                try:
                    if cond:
                        return
                finally:
                    pool.flush()
        """
        assert rule_names(code, [DirtyPageEscapeRule]) == []

    def test_never_flushed_left_to_resource_safety(self):
        code = """
            def write(pager, pid, img):
                pool = BufferPool(pager)
                pool.put(pid, img)
        """
        assert rule_names(code, [DirtyPageEscapeRule]) == []


class TestStatsReadBeforeFlush:
    def test_direct_read_while_dirty_flagged(self):
        code = """
            def measure(pager, pid, img):
                pool = BufferPool(pager)
                pool.put(pid, img)
                writes = pool.stats.physical_writes
                pool.close()
                return writes
        """
        assert rule_names(code, [StatsReadBeforeFlushRule]) == \
            ["stats-read-before-flush"]

    def test_read_after_flush_passes(self):
        code = """
            def measure(pager, pid, img):
                pool = BufferPool(pager)
                pool.put(pid, img)
                pool.flush()
                writes = pool.stats.physical_writes
                pool.close()
                return writes
        """
        assert rule_names(code, [StatsReadBeforeFlushRule]) == []

    def test_alias_snapshot_while_dirty_flagged(self):
        code = """
            def measure(pager, pid, img):
                pool = BufferPool(pager)
                stats = pool.stats
                pool.put(pid, img)
                snap = stats.snapshot()
                pool.close()
                return snap
        """
        assert rule_names(code, [StatsReadBeforeFlushRule]) == \
            ["stats-read-before-flush"]

    def test_unrelated_attribute_names_ignored(self):
        code = """
            def unrelated(record):
                return record.evictions
        """
        assert rule_names(code, [StatsReadBeforeFlushRule]) == []

    def test_wal_side_counter_read_while_dirty_passes(self):
        # wal_appends counts log traffic, which is already durable the
        # moment commit() returns -- reading it before a data-side flush
        # is exactly what recovery and checkpoint code must do.
        code = """
            def measure(pager, pid, img):
                pool = BufferPool(pager)
                pool.put(pid, img)
                appended = pool.stats.wal_appends
                pool.close()
                return appended
        """
        assert rule_names(code, [StatsReadBeforeFlushRule]) == []

    def test_wal_exemption_does_not_mask_page_counters(self):
        # The WAL carve-out is field-by-field: the page-side counter in
        # the same expression block is still flagged.
        code = """
            def measure(pager, pid, img):
                pool = BufferPool(pager)
                pool.put(pid, img)
                appended = pool.stats.wal_appends
                writes = pool.stats.physical_writes
                pool.close()
                return appended + writes
        """
        assert rule_names(code, [StatsReadBeforeFlushRule]) == \
            ["stats-read-before-flush"]

    def test_flushed_lsn_read_on_dirty_wal_passes(self):
        # flushed_lsn IS the durability watermark; consulting it while
        # records are in flight is the protocol, not a violation.
        code = """
            def watermark(fileobj, image):
                wal = WriteAheadLog(fileobj, 4096)
                wal.append(1, image)
                mark = wal.flushed_lsn
                wal.close()
                return mark
        """
        assert rule_names(code, [StatsReadBeforeFlushRule]) == []


class TestRegressionOverRepo:
    def test_all_flow_rules_clean_over_src(self):
        from repro.analysis.runner import lint_paths
        result = lint_paths(["src/repro"], rules=FLOW_RULES)
        assert result.errors == []
        assert [f.as_dict() for f in result.findings] == []

    @pytest.mark.parametrize("rule", FLOW_RULES)
    def test_rules_have_names_and_descriptions(self, rule):
        assert rule.name
        assert rule.description
