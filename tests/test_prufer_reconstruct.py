"""Reconstruction tests: the tree <-> sequence bijection (Section 3.1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_random_tree
from repro.prufer.reconstruct import reconstruct_document
from repro.prufer.sequence import regular_sequence
from repro.xmlkit.errors import TreeConstructionError
from repro.xmlkit.tree import Document, element, same_tree


class TestReconstruction:
    def test_figure2_roundtrip(self, fig2_doc):
        seq = regular_sequence(fig2_doc)
        rebuilt = reconstruct_document(seq.lps, seq.nps, seq.leaves)
        assert same_tree(fig2_doc.root, rebuilt.root)

    def test_single_node(self):
        doc = Document(element("only"))
        seq = regular_sequence(doc)
        rebuilt = reconstruct_document(seq.lps, seq.nps, seq.leaves)
        assert same_tree(doc.root, rebuilt.root)

    def test_path_tree(self):
        root = element("a")
        node = root
        for tag in "bcde":
            node = node.append(element(tag))
        doc = Document(root)
        seq = regular_sequence(doc)
        rebuilt = reconstruct_document(seq.lps, seq.nps, seq.leaves)
        assert same_tree(doc.root, rebuilt.root)


class TestValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(TreeConstructionError):
            reconstruct_document(("a",), (1, 2), ())

    def test_out_of_range_parent_rejected(self):
        with pytest.raises(TreeConstructionError):
            reconstruct_document(("a",), (9,), ())

    def test_conflicting_labels_rejected(self):
        # Node 3 labeled both 'x' and 'y'.
        with pytest.raises(TreeConstructionError):
            reconstruct_document(("x", "y"), (3, 3), (("l", 1), ("m", 2)))

    def test_missing_leaf_labels_rejected(self):
        with pytest.raises(TreeConstructionError):
            reconstruct_document(("a",), (2,), ())

    def test_invalid_postorder_rejected(self):
        # nps says node 1's parent is 2 and node 2's parent is 1 -- but 3
        # is the root; the numbering cannot be a postorder numbering.
        with pytest.raises(TreeConstructionError):
            reconstruct_document(("a", "b"), (3, 1),
                                 (("l", 1), ("m", 2)))


@settings(max_examples=150, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_bijection_property(seed):
    """Prufer's one-to-one correspondence: transform then reconstruct
    yields a structurally identical tree, for arbitrary labeled trees
    including value nodes."""
    rng = random.Random(seed)
    doc = Document(make_random_tree(rng, max_nodes=24))
    seq = regular_sequence(doc)
    rebuilt = reconstruct_document(seq.lps, seq.nps, seq.leaves)
    assert same_tree(doc.root, rebuilt.root)
    # And the rebuilt tree produces the identical sequence again.
    seq2 = regular_sequence(rebuilt)
    assert seq2.lps == seq.lps
    assert seq2.nps == seq.nps
