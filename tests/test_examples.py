"""Every example script must run to completion (guards against rot)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")

#: (script, extra argv) -- small sizes keep the suite fast.
SCRIPTS = [
    ("quickstart.py", []),
    ("paper_walkthrough.py", []),
    ("incremental_updates.py", []),
    ("bibliography_search.py", ["200"]),
    ("protein_twigs.py", ["60"]),
    ("treebank_wildcards.py", ["80"]),
]


@pytest.mark.parametrize("script,argv",
                         SCRIPTS, ids=[s for s, _ in SCRIPTS])
def test_example_runs(script, argv):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(EXAMPLES_DIR), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)] + argv,
        capture_output=True, text=True, timeout=300, env=env)
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n"
        f"{result.stderr[-2000:]}")
    assert result.stdout.strip(), f"{script} produced no output"
