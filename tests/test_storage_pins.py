"""BufferPool pin/unpin protocol tests.

This file deliberately drives the pool through unbalanced pin states
(pin without unpin, unpin at zero, close while pinned) to test that the
runtime rejects them -- exactly what the static rule forbids, so it is
opted out file-wide:

# prixlint: disable-file=pin-unpin-balance
"""

import threading

import pytest

from repro.storage.buffer_pool import BufferPool
from repro.storage.errors import (BufferPoolExhaustedError,
                                  PinProtocolError)
from repro.storage.pager import Pager


@pytest.fixture
def pool():
    with Pager.in_memory(page_size=32) as pager:
        yield BufferPool(pager, capacity=3)


def fill(pool, n):
    """Allocate ``n`` zeroed pages; returns their ids."""
    return [pool.new_page()[0] for _ in range(n)]


class TestPinBasics:
    def test_pin_returns_live_frame(self, pool):
        (pid,) = fill(pool, 1)
        frame = pool.pin(pid)
        assert frame is pool.get(pid)
        pool.unpin(pid)

    def test_pin_counts_nest(self, pool):
        (pid,) = fill(pool, 1)
        pool.pin(pid)
        pool.pin(pid)
        assert pool.pin_count(pid) == 2
        pool.unpin(pid)
        assert pool.pin_count(pid) == 1
        pool.unpin(pid)
        assert pool.pin_count(pid) == 0
        assert pool.pinned_pages == frozenset()

    def test_pin_is_a_logical_read(self, pool):
        (pid,) = fill(pool, 1)
        before = pool.stats.logical_reads
        pool.pin(pid)
        assert pool.stats.logical_reads == before + 1
        pool.unpin(pid)

    def test_unpin_at_zero_raises_typed_error(self, pool):
        (pid,) = fill(pool, 1)
        with pytest.raises(PinProtocolError):
            pool.unpin(pid)

    def test_unpin_below_zero_after_balance_raises(self, pool):
        (pid,) = fill(pool, 1)
        pool.pin(pid)
        pool.unpin(pid)
        with pytest.raises(PinProtocolError):
            pool.unpin(pid)


class TestPinsAndEviction:
    def test_pinned_page_survives_eviction_pressure(self, pool):
        pids = fill(pool, 3)  # capacity 3: pool now full
        pool.pin(pids[0])
        fill(pool, 3)  # evicts the unpinned frames only
        assert pids[0] in pool.pinned_pages
        # The pinned frame is still resident: getting it is not a miss.
        before = pool.stats.physical_reads
        pool.get(pids[0])
        assert pool.stats.physical_reads == before
        pool.unpin(pids[0])

    def test_all_frames_pinned_raises_exhausted(self, pool):
        pids = fill(pool, 3)
        for pid in pids:
            pool.pin(pid)
        with pytest.raises(BufferPoolExhaustedError):
            pool.new_page()
        for pid in pids:
            pool.unpin(pid)

    def test_flush_and_clear_with_pins_refused(self, pool):
        (pid,) = fill(pool, 1)
        pool.pin(pid)
        with pytest.raises(PinProtocolError):
            pool.flush_and_clear()
        pool.unpin(pid)
        pool.flush_and_clear()  # fine once released


class TestThreadOwnedPins:
    """Pins belong to the thread that took them; the error messages
    name threads so concurrent pin bugs are attributable."""

    def run_in_thread(self, name, target):
        box = []

        def wrapped():
            try:
                box.append(("ok", target()))
            except Exception as error:  # noqa: BLE001 - relayed to caller
                box.append(("err", error))

        thread = threading.Thread(target=wrapped, name=name)
        thread.start()
        thread.join()
        return box[0]

    def test_pin_owners_names_threads(self, pool):
        (pid,) = fill(pool, 1)
        pool.pin(pid)
        self.run_in_thread("reader-7", lambda: pool.pin(pid))
        owners = pool.pin_owners(pid)
        assert owners[threading.current_thread().name] == 1
        assert owners["reader-7"] == 1
        assert pool.pin_count(pid) == 2
        pool.unpin(pid)
        status, result = self.run_in_thread(
            "reader-7", lambda: pool.unpin(pid))
        assert status == "ok"

    def test_cross_thread_unpin_raises_with_owner_names(self, pool):
        (pid,) = fill(pool, 1)
        pool.pin(pid)
        status, error = self.run_in_thread(
            "impostor", lambda: pool.unpin(pid))
        assert status == "err"
        assert isinstance(error, PinProtocolError)
        message = str(error)
        assert "impostor" in message  # who unpinned wrongly
        assert threading.current_thread().name in message  # who holds it
        pool.unpin(pid)

    def test_exhausted_message_names_capacity_and_owners(self, pool):
        pids = fill(pool, 3)
        for pid in pids:
            pool.pin(pid)
        with pytest.raises(BufferPoolExhaustedError) as excinfo:
            pool.new_page()
        message = str(excinfo.value)
        assert "all 3 frames are pinned" in message
        assert "3 pin(s) on 3 page(s)" in message
        assert threading.current_thread().name in message
        for pid in pids:
            pool.unpin(pid)

    def test_flush_and_clear_refusal_names_owners(self, pool):
        (pid,) = fill(pool, 1)
        pool.pin(pid)
        with pytest.raises(PinProtocolError) as excinfo:
            pool.flush_and_clear()
        assert threading.current_thread().name in str(excinfo.value)
        pool.unpin(pid)


class TestPinnedContextManager:
    def test_releases_on_normal_exit(self, pool):
        (pid,) = fill(pool, 1)
        with pool.pinned(pid) as frame:
            assert pool.pin_count(pid) == 1
            assert frame is pool.get(pid)
        assert pool.pin_count(pid) == 0

    def test_releases_on_exception(self, pool):
        (pid,) = fill(pool, 1)
        with pytest.raises(RuntimeError):
            with pool.pinned(pid):
                raise RuntimeError("boom")
        assert pool.pin_count(pid) == 0

    def test_mutation_under_pin_reaches_disk(self, pool):
        pids = fill(pool, 3)
        with pool.pinned(pids[0]) as frame:
            frame[0] = 0x5A
            pool.mark_dirty(pids[0])
        fill(pool, 3)  # force eviction and write-back
        assert pool.get(pids[0])[0] == 0x5A
