"""The corruption matrix: damage the at-rest index every seeded way and
prove the guard never lets a silent wrong answer through.

For each (dataset, seed) the harness builds one guarded, durable index
on disk, then sweeps corruption points.  Each point deterministically
picks a page and a corruption flavour (bit flip, zeroed page,
misdirected write -- see :func:`repro.storage.faults.inject_corruption`)
and applies it to a fresh copy of the files.  The oracle is absolute:

- with the write-ahead log intact, every corruption must be *repaired*
  (recovery replay or read-repair) and the query results must equal a
  clean rebuild of the corpus;
- with the log checkpointed away (no repair source), every run must
  either still equal the clean rebuild (the damaged page was never
  consumed) or fail with a typed
  :class:`~repro.storage.errors.CorruptionError` -- never return
  results that differ from the oracle.

A failure dumps the corruption plan (a complete reproduction recipe:
seed + point + page + kind) as JSON to ``$PRIX_CRASH_ARTIFACT`` so CI
can upload it, mirroring ``test_crash_matrix.py``.
"""

import json
import os
import shutil

import pytest

from repro.prix.index import IndexOptions, PrixIndex
from repro.storage.errors import CorruptionError
from repro.storage.faults import inject_corruption
from repro.storage.guard import scrub_path
from repro.xmlkit.parser import parse_document

SEEDS = (11, 23, 47)
PAGE_SIZE = 256
POOL_PAGES = 48

#: Corruption points swept per (dataset, seed, regime).  The CI
#: corruption-matrix job raises this to widen the sweep.
MAX_POINTS = int(os.environ.get("PRIX_CRASH_MAX_RUNS", "16"))


def _docs(texts):
    return [parse_document(text, doc_id)
            for doc_id, text in enumerate(texts, start=1)]


class Dataset:
    def __init__(self, name, texts, queries):
        self.name = name
        self.docs = _docs(texts)
        self.queries = queries


DATASETS = [
    Dataset(
        "bib",
        texts=[
            '<bib><book><author>knuth</author><title>taocp</title></book>'
            '<book><author>gray</author><title>txn</title></book></bib>',
            '<bib><book><author>date</author><title>intro</title></book>'
            '</bib>',
            '<bib><article><author>codd</author></article></bib>',
        ],
        queries=['//book/author', '//book[./author="gray"]/title',
                 '//article/author'],
    ),
    Dataset(
        "deep",
        texts=[
            '<r><a><b><c><d>x</d></c></b></a></r>',
            '<r><a><b><d>y</d></b></a><a><c/></a></r>',
            '<r><b><c><d>z</d></c></b></r>',
        ],
        queries=['//a//d', '//b[./c]', '//a/b/c/d'],
    ),
    Dataset(
        "mixed",
        texts=[
            '<shop><item><name>bolt</name><price>2</price></item>'
            '<item><name>nut</name><price>1</price></item></shop>',
            '<shop><item><name>gear</name><price>9</price></item></shop>',
            '<shop><bin><item><name>bolt</name></item></bin></shop>',
        ],
        queries=['//item/name', '//item[./name="bolt"]', '//bin//name'],
    ),
]


def query_results(index, queries):
    return {q: sorted((m.doc_id, m.canonical) for m in index.query(q))
            for q in queries}


def oracle_results(dataset):
    """Clean, non-durable rebuild of the corpus: the ground truth."""
    with PrixIndex.build(dataset.docs,
                         IndexOptions(page_size=PAGE_SIZE,
                                      pool_pages=POOL_PAGES)) as index:
        return query_results(index, dataset.queries)


def build_guarded(dataset, tmp_path):
    """Guarded, durable on-disk build; returns the pristine file paths."""
    path = str(tmp_path / f"{dataset.name}.idx")
    index = PrixIndex.build(dataset.docs,
                            IndexOptions(path=path, page_size=PAGE_SIZE,
                                         pool_pages=POOL_PAGES,
                                         durable=True, guard=True))
    index.save()
    index.close()
    return path


def corrupt_copy(pristine, tmp_path, seed, point, checkpoint):
    """Fresh copy of the pristine files with one injected corruption.

    Returns ``(path, plan)``.  With ``checkpoint`` the WAL is truncated
    first, so the corruption has no committed image to repair from.
    """
    path = str(tmp_path / "case.idx")
    for suffix in ("", ".wal", ".sum"):
        if os.path.exists(path + suffix):
            os.remove(path + suffix)
        shutil.copy(pristine + suffix, path + suffix)
    if checkpoint:
        with PrixIndex.open(path, durable=True,
                            pool_pages=POOL_PAGES) as index:
            index.checkpoint()
    with open(path, "rb") as handle:
        data = handle.read()
    corrupted, plan = inject_corruption(data, PAGE_SIZE, seed, point)
    with open(path, "wb") as handle:
        handle.write(corrupted)
    return path, plan


def dump_artifact(dataset, seed, point, plan, detail):
    artifact = os.environ.get("PRIX_CRASH_ARTIFACT")
    if not artifact:
        return
    recipe = dict(plan or {})
    recipe.update({"dataset": dataset.name, "seed": seed, "point": point,
                   "detail": detail, "page_size": PAGE_SIZE,
                   "pool_pages": POOL_PAGES})
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(recipe, handle, indent=2)


@pytest.mark.parametrize("dataset", DATASETS, ids=lambda d: d.name)
@pytest.mark.parametrize("seed", SEEDS)
def test_corruption_matrix_wal_intact(dataset, seed, tmp_path):
    """Every corruption is healed when the log still holds the images.

    Opening runs recovery (replaying committed images restamps the
    pages), and anything recovery missed is read-repaired on first
    access -- so the query results must always equal the oracle.
    """
    oracle = oracle_results(dataset)
    pristine = build_guarded(dataset, tmp_path)
    for point in range(MAX_POINTS):
        path, plan = corrupt_copy(pristine, tmp_path, seed, point,
                                  checkpoint=False)
        try:
            with PrixIndex.open(path, pool_pages=POOL_PAGES) as index:
                got = query_results(index, dataset.queries)
            assert got == oracle
        except Exception as error:
            dump_artifact(dataset, seed, point, plan,
                          f"wal-intact: {error}")
            raise


@pytest.mark.parametrize("dataset", DATASETS, ids=lambda d: d.name)
@pytest.mark.parametrize("seed", SEEDS)
def test_corruption_matrix_checkpointed(dataset, seed, tmp_path):
    """With no repair source the guard degrades to a typed error.

    After a checkpoint truncates the log, a damaged page cannot be
    repaired.  The oracle: results equal to a clean rebuild, or a typed
    :class:`CorruptionError` -- a silent deviation fails the matrix.
    """
    oracle = oracle_results(dataset)
    pristine = build_guarded(dataset, tmp_path)
    typed_errors = 0
    for point in range(MAX_POINTS):
        path, plan = corrupt_copy(pristine, tmp_path, seed, point,
                                  checkpoint=True)
        try:
            try:
                with PrixIndex.open(path, pool_pages=POOL_PAGES) as index:
                    got = query_results(index, dataset.queries)
            except CorruptionError:
                typed_errors += 1
            else:
                assert got == oracle, (
                    f"silent wrong answer at point {point}: {plan}")
        except Exception as error:
            dump_artifact(dataset, seed, point, plan,
                          f"checkpointed: {error}")
            raise
    # The sweep must actually exercise the typed-failure path; a sweep
    # where every corruption happened to miss live pages proves nothing.
    assert typed_errors > 0, (
        "no corruption point produced a typed error; widen MAX_POINTS")


@pytest.mark.parametrize("seed", SEEDS)
def test_scrub_heals_with_wal_and_reports_without(seed, tmp_path):
    """``scrub`` repairs in place when the log covers the page, and
    pinpoints the damaged page (unhealthy report) when it cannot."""
    dataset = DATASETS[0]
    oracle = oracle_results(dataset)
    pristine = build_guarded(dataset, tmp_path)

    # With the WAL: scrub must repair and leave a healthy, queryable
    # index; a second scrub sees nothing left to fix.
    path, plan = corrupt_copy(pristine, tmp_path, seed, point=0,
                              checkpoint=False)
    report = scrub_path(path, wal_path=path + ".wal")
    assert report.healthy
    again = scrub_path(path, wal_path=path + ".wal")
    assert again.healthy and again.pages_repaired == 0
    with PrixIndex.open(path, pool_pages=POOL_PAGES) as index:
        assert query_results(index, dataset.queries) == oracle

    # Without the WAL: find a point whose corruption scrub cannot mend,
    # and require the report to name the exact page from the plan.
    for point in range(MAX_POINTS):
        path, plan = corrupt_copy(pristine, tmp_path, seed, point,
                                  checkpoint=True)
        report = scrub_path(path, wal_path=path + ".wal")
        if not report.healthy:
            assert report.pages_corrupt == [plan["page"]] or (
                report.catalog_ok is False)
            break
    else:
        pytest.fail("no corruption point produced an unhealthy scrub")
