"""Write-ahead log tests: framing, LSNs, sync policies, checkpoints.

The log's contract is narrow but absolute: a record whose LSN is below
``flushed_lsn`` is durable and will be yielded by ``replay()`` exactly
as written; anything after a torn frame is never yielded at all.
"""

import io

import pytest

from repro.storage.errors import WalCorruptionError, WalError
from repro.storage.wal import (REC_CHECKPOINT, REC_COMMIT, REC_PAGE,
                               SYNC_ALWAYS, SYNC_COMMIT, SYNC_NEVER,
                               WriteAheadLog, _FRAME, _HEADER)

PAGE = 64


def make_wal(sync_policy=SYNC_COMMIT, page_size=PAGE):
    return WriteAheadLog(io.BytesIO(), page_size, sync_policy=sync_policy)


def image(fill, page_size=PAGE):
    return bytes([fill]) * page_size


class TestFraming:
    def test_empty_log_replays_nothing(self):
        with make_wal() as wal:
            assert list(wal.replay()) == []

    def test_page_record_roundtrip(self):
        with make_wal() as wal:
            wal.log_page(7, image(0xAB))
            (record,) = wal.replay()
            assert record.rtype == REC_PAGE
            assert record.page_image() == (7, image(0xAB))

    def test_records_replay_in_order(self):
        with make_wal() as wal:
            wal.log_page(1, image(1))
            wal.log_page(2, image(2))
            wal.commit(page_count=2)
            types = [r.rtype for r in wal.replay()]
            assert types == [REC_PAGE, REC_PAGE, REC_COMMIT]

    def test_wrong_size_image_rejected(self):
        with make_wal() as wal:
            with pytest.raises(WalError):
                wal.log_page(0, b"short")

    def test_page_image_on_commit_record_rejected(self):
        with make_wal() as wal:
            wal.commit()
            (record,) = wal.replay()
            with pytest.raises(WalError):
                record.page_image()


class TestLsn:
    def test_lsns_are_strictly_increasing(self):
        with make_wal() as wal:
            lsns = [wal.log_page(i, image(i)) for i in range(5)]
            assert lsns == sorted(set(lsns))

    def test_commit_advances_flushed_lsn(self):
        with make_wal() as wal:
            wal.log_page(0, image(0))
            assert wal.flushed_lsn < wal.next_lsn
            wal.commit(page_count=1)
            assert wal.flushed_lsn == wal.next_lsn

    def test_require_durable_forces_sync(self):
        with make_wal(sync_policy=SYNC_NEVER) as wal:
            lsn = wal.log_page(0, image(0))
            assert lsn >= wal.flushed_lsn
            wal.require_durable(lsn)
            assert lsn < wal.flushed_lsn

    def test_require_durable_noop_when_already_durable(self):
        with make_wal() as wal:
            lsn = wal.log_page(0, image(0))
            wal.sync()
            fsyncs = wal.stats.wal_fsyncs
            wal.require_durable(lsn)
            assert wal.stats.wal_fsyncs == fsyncs


class TestSyncPolicies:
    def test_always_syncs_every_append(self):
        with make_wal(sync_policy=SYNC_ALWAYS) as wal:
            wal.log_page(0, image(0))
            wal.log_page(1, image(1))
            assert wal.stats.wal_fsyncs == 2

    def test_commit_policy_syncs_only_commits(self):
        with make_wal(sync_policy=SYNC_COMMIT) as wal:
            wal.log_page(0, image(0))
            assert wal.stats.wal_fsyncs == 0
            wal.commit(page_count=1)
            assert wal.stats.wal_fsyncs == 1

    def test_never_policy_never_syncs_implicitly(self):
        with make_wal(sync_policy=SYNC_NEVER) as wal:
            wal.log_page(0, image(0))
            wal.commit(page_count=1)
            assert wal.stats.wal_fsyncs == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            WriteAheadLog(io.BytesIO(), PAGE, sync_policy="sometimes")


def log_bytes_with_tail():
    """A log holding ``PAGE(0) COMMIT PAGE(1)``; returns (bytes, offset
    of the last record)."""
    buf = io.BytesIO()
    wal = WriteAheadLog(buf, PAGE)
    wal.log_page(0, image(0))
    wal.commit(page_count=1)
    end = wal.size_bytes
    wal.log_page(1, image(1))
    raw = buf.getvalue()
    wal.close()
    return raw, end


class TestTornTail:
    def test_torn_frame_ends_replay(self):
        raw, end = log_bytes_with_tail()
        # Tear the last record: keep the frame header, lose payload bytes.
        with WriteAheadLog(io.BytesIO(raw[:end + _FRAME.size + 3]),
                           PAGE) as wal:
            assert [r.rtype for r in wal.replay()] == [REC_PAGE, REC_COMMIT]

    def test_corrupt_crc_ends_replay(self):
        raw, end = log_bytes_with_tail()
        flipped = bytearray(raw)
        flipped[end + _FRAME.size] ^= 0xFF  # flip a payload byte
        with WriteAheadLog(io.BytesIO(bytes(flipped)), PAGE) as wal:
            assert [r.rtype for r in wal.replay()] == [REC_PAGE, REC_COMMIT]

    def test_reattach_truncates_torn_tail_and_appends(self):
        raw, end = log_bytes_with_tail()
        with WriteAheadLog(io.BytesIO(raw[:end + 5]), PAGE) as wal:
            # The torn record is gone; new appends continue cleanly.
            wal.log_page(2, image(2))
            wal.commit(page_count=1)
            pages = [r.page_image()[0] for r in wal.replay()
                     if r.rtype == REC_PAGE]
            assert pages == [0, 2]

    def test_bad_header_refused_for_appends(self):
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(io.BytesIO(b"NOTAWAL!" + b"\x00" * 32), PAGE)

    def test_page_size_mismatch_refused(self):
        raw, _ = log_bytes_with_tail()
        with pytest.raises(WalError):
            WriteAheadLog(io.BytesIO(raw), PAGE * 2)


class TestCheckpoint:
    def test_checkpoint_truncates_and_keeps_lsn_monotonic(self):
        with make_wal() as wal:
            for i in range(4):
                wal.log_page(i, image(i))
            wal.commit(page_count=4)
            before = wal.next_lsn
            wal.checkpoint(num_pages=4)
            assert wal.size_bytes < before
            assert wal.next_lsn >= before  # LSNs never restart

    def test_checkpoint_record_survives(self):
        with make_wal() as wal:
            wal.log_page(0, image(0))
            wal.commit(page_count=1)
            wal.checkpoint(num_pages=1)
            (record,) = wal.replay()
            assert record.rtype == REC_CHECKPOINT

    def test_appends_resume_after_checkpoint(self):
        with make_wal() as wal:
            wal.log_page(0, image(0))
            wal.commit(page_count=1)
            wal.checkpoint(num_pages=1)
            wal.log_page(5, image(5))
            wal.commit(page_count=1)
            pages = [r.page_image()[0] for r in wal.replay()
                     if r.rtype == REC_PAGE]
            assert pages == [5]


class TestAccounting:
    def test_wal_counters_move_page_counters_do_not(self):
        with make_wal() as wal:
            wal.log_page(0, image(0))
            wal.commit(page_count=1)
            stats = wal.stats
            assert stats.wal_appends == 2
            assert stats.wal_fsyncs == 1
            assert stats.wal_bytes > 2 * _FRAME.size
            assert stats.physical_reads == 0
            assert stats.physical_writes == 0

    def test_open_creates_file_and_reattaches(self, tmp_path):
        path = str(tmp_path / "log.wal")
        with WriteAheadLog.open(path, PAGE) as wal:
            wal.log_page(3, image(3))
            wal.commit(page_count=1)
        with WriteAheadLog.open(path, PAGE) as wal:
            pages = [r.page_image()[0] for r in wal.replay()
                     if r.rtype == REC_PAGE]
            assert pages == [3]

    def test_header_size_is_stable(self):
        # The recovery module peeks exactly this many bytes; a format
        # change must bump the version, not silently shift the layout.
        assert _HEADER.size == 24
