"""Binary structural join tests (Stack-Tree-Desc + twig decomposition)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_random_tree, make_random_twig
from repro.baselines.naive import naive_matches
from repro.baselines.region import StreamSet, build_stream_entries
from repro.baselines.structjoin import binary_twig_join, structural_join
from repro.baselines.twigstack import twig_stack
from repro.query.twig import Axis
from repro.query.xpath import parse_xpath
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.xmlkit.parser import parse_document
from repro.xmlkit.tree import Document


def stream_set(docs):
    pool = BufferPool(Pager.in_memory())
    return StreamSet.build(docs, pool)


def entries(docs, tag):
    return build_stream_entries(docs).get(tag, [])


class TestStructuralJoin:
    def test_ancestor_descendant_pairs(self):
        docs = [parse_document("<a><x><b/></x><b/></a>", 1)]
        pairs = structural_join(entries(docs, "a"), entries(docs, "b"))
        assert len(pairs) == 2
        for ancestor, descendant in pairs:
            assert ancestor.contains(descendant)

    def test_parent_child_level_filter(self):
        docs = [parse_document("<a><x><b/></x><b/></a>", 1)]
        pairs = structural_join(entries(docs, "a"), entries(docs, "b"),
                                axis=Axis.CHILD)
        assert len(pairs) == 1

    def test_same_tag_excludes_self(self):
        docs = [parse_document("<c><c><c/></c></c>", 1)]
        all_c = entries(docs, "c")
        pairs = structural_join(all_c, all_c)
        assert len(pairs) == 3
        assert all(a.start < d.start for a, d in pairs)

    def test_no_cross_document_pairs(self):
        docs = [parse_document("<a><b/></a>", 1),
                parse_document("<a><b/></a>", 2)]
        pairs = structural_join(entries(docs, "a"), entries(docs, "b"))
        assert len(pairs) == 2
        assert all(a.doc_id == d.doc_id for a, d in pairs)

    def test_empty_inputs(self):
        docs = [parse_document("<a/>", 1)]
        assert structural_join([], entries(docs, "a")) == []
        assert structural_join(entries(docs, "a"), []) == []


class TestBinaryTwigJoin:
    def test_matches_twigstack(self):
        docs = [parse_document("<a><b><c/></b><c/></a>", 1),
                parse_document("<a><b/></a>", 2)]
        streams = stream_set(docs)
        pattern = parse_xpath("//a[./b]//c")
        binary, _ = binary_twig_join(pattern, streams)
        holistic, _ = twig_stack(pattern, streams)
        assert binary == holistic

    def test_intermediate_blowup_measured(self):
        """The intro's motivation: many edge pairs, few final answers."""
        parts = []
        for i in range(40):
            parts.append(f"<entry><org>o{i}</org><ref><author/></ref>"
                         "</entry>")
        parts.append('<entry><org>needle</org><ref><author/></ref>'
                     "<frm/></entry>")
        text = "<db>" + "".join(parts) + "</db>"
        docs = [parse_document(text, 1)]
        streams = stream_set(docs)
        pattern = parse_xpath("//entry[.//author]//frm")
        matches, stats = binary_twig_join(pattern, streams)
        assert len(matches) == 1
        # The (entry, author) edge produced a pair per entry -- wasted
        # intermediate work the merge throws away.
        assert stats.pairs_produced > 40
        assert stats.merged_solutions == 1


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_binary_join_matches_xpath_oracle(seed):
    rng = random.Random(seed)
    docs = [Document(make_random_tree(rng, max_nodes=14), doc_id=i + 1)
            for i in range(3)]
    pattern = make_random_twig(rng, star_p=0.15, absolute_p=0.0)
    got, _ = binary_twig_join(pattern, stream_set(docs))
    want = {(d.doc_id, emb) for d in docs
            for emb in naive_matches(d, pattern, semantics="xpath")}
    assert got == want
