"""Unit tests for the checksum guard (``repro.storage.guard``).

Covers the guard's whole contract: stamping and verification, the
page-id salt (misdirected writes), WAL read-repair, quarantine
semantics, sidecar persistence across reopen, scrub reporting, and the
accounting promise that guard traffic never inflates the paper's
physical-read counters.
"""

import io
import os

import pytest

from repro.storage.buffer_pool import BufferPool
from repro.storage.codec import page_checksum
from repro.storage.errors import PageCorruptionError
from repro.storage.guard import PageGuard, scrub, scrub_path
from repro.storage.pager import Pager
from repro.storage.recovery import recover_path
from repro.storage.stats import IOStats
from repro.storage.wal import WriteAheadLog

PAGE_SIZE = 64


def guarded_pager(page_size=PAGE_SIZE):
    guard = PageGuard(io.BytesIO(), page_size)
    return Pager.in_memory(page_size, guard=guard), guard


def fill(value, page_size=PAGE_SIZE):
    return bytes([value]) * page_size


class TestChecksum:
    def test_salted_with_page_id(self):
        payload = fill(0xAB)
        assert page_checksum(1, payload) != page_checksum(2, payload)

    def test_payload_sensitivity(self):
        assert (page_checksum(1, fill(0xAB))
                != page_checksum(1, fill(0xAC)))


class TestStampAndVerify:
    def test_write_stamps_and_read_verifies(self):
        pager, guard = guarded_pager()
        pid = pager.allocate()
        pager.write(pid, fill(0x11))
        assert guard.is_stamped(pid)
        assert bytes(pager.read(pid)) == fill(0x11)
        assert pager.stats.guard_verifications == 1
        assert pager.stats.guard_quarantines == 0

    def test_allocate_stamps_zero_page(self):
        pager, guard = guarded_pager()
        pid = pager.allocate()
        assert guard.is_stamped(pid)
        assert bytes(pager.read(pid)) == bytes(PAGE_SIZE)

    def test_unstamped_page_passes_through(self):
        # Adoption path: a pre-guard file has no stamps; reads succeed
        # (and are trusted) until stamp_all() or a write covers them.
        pager = Pager.in_memory(PAGE_SIZE)
        pid = pager.allocate()
        pager.write(pid, fill(0x22))
        guard = PageGuard(io.BytesIO(), PAGE_SIZE)
        pager.attach_guard(guard)
        assert not guard.is_stamped(pid)
        assert bytes(pager.read(pid)) == fill(0x22)

    def test_stamp_all_adopts_existing_pages(self):
        pager = Pager.in_memory(PAGE_SIZE)
        pids = [pager.allocate() for _ in range(3)]
        for i, pid in enumerate(pids):
            pager.write(pid, fill(0x30 + i))
        guard = PageGuard(io.BytesIO(), PAGE_SIZE)
        pager.attach_guard(guard)
        guard.stamp_all(pager)
        assert guard.stamped_pages == set(pids)

    def test_mismatched_page_size_rejected(self):
        guard = PageGuard(io.BytesIO(), 128)
        with pytest.raises(ValueError):
            Pager.in_memory(PAGE_SIZE, guard=guard)


class TestCorruptionAndQuarantine:
    def corrupt(self, pager, pid, data):
        """Damage the backing file under the pager's feet."""
        pager._file.seek(pid * PAGE_SIZE)
        pager._file.write(data)

    def test_bit_flip_raises_typed_error(self):
        pager, guard = guarded_pager()
        pid = pager.allocate()
        pager.write(pid, fill(0x11))
        bad = bytearray(fill(0x11))
        bad[7] ^= 0x01
        self.corrupt(pager, pid, bytes(bad))
        with pytest.raises(PageCorruptionError) as excinfo:
            pager.read(pid)
        assert excinfo.value.page_id == pid
        assert pager.stats.guard_quarantines == 1

    def test_quarantine_fails_fast_without_rereading(self):
        pager, guard = guarded_pager()
        pid = pager.allocate()
        pager.write(pid, fill(0x11))
        self.corrupt(pager, pid, fill(0x99))
        with pytest.raises(PageCorruptionError):
            pager.read(pid)
        reads_after_first = pager.stats.physical_reads
        with pytest.raises(PageCorruptionError) as excinfo:
            pager.read(pid)
        assert excinfo.value.quarantined
        assert pager.stats.physical_reads == reads_after_first

    def test_misdirected_write_detected_by_salt(self):
        # Two pages with identical *future* content: copy page A's image
        # over page B.  A payload-only checksum would pass; the page-id
        # salt must not.
        pager, guard = guarded_pager()
        a, b = pager.allocate(), pager.allocate()
        pager.write(a, fill(0x55))
        pager.write(b, fill(0x66))
        pager._file.seek(a * PAGE_SIZE)
        image_a = pager._file.read(PAGE_SIZE)
        self.corrupt(pager, b, image_a)
        with pytest.raises(PageCorruptionError):
            pager.read(b)

    def test_rewrite_heals_quarantine(self):
        pager, guard = guarded_pager()
        pid = pager.allocate()
        pager.write(pid, fill(0x11))
        self.corrupt(pager, pid, fill(0x99))
        with pytest.raises(PageCorruptionError):
            pager.read(pid)
        pager.write(pid, fill(0x44))
        assert pid not in guard.quarantined_pages
        assert bytes(pager.read(pid)) == fill(0x44)


class TestWalReadRepair:
    def make_guarded_wal_pool(self):
        pager, guard = guarded_pager()
        wal = WriteAheadLog(io.BytesIO(), PAGE_SIZE)
        pool = BufferPool(pager, capacity=8)
        pool.attach_wal(wal)
        return pager, guard, pool, wal

    def test_flipped_bit_repaired_from_committed_image(self):
        """Satellite oracle: bit flip + covering WAL image ==
        transparent repair to exactly the committed bytes."""
        pager, guard, pool, wal = self.make_guarded_wal_pool()
        pid = pager.allocate()
        pool.put(pid, fill(0x11))
        pool.commit()
        pool.flush()
        pool.flush_and_clear()
        bad = bytearray(fill(0x11))
        bad[3] ^= 0x80
        pager._file.seek(pid * PAGE_SIZE)
        pager._file.write(bytes(bad))
        assert bytes(pager.read(pid)) == fill(0x11)
        assert pager.stats.guard_repairs == 1
        assert pager.stats.guard_quarantines == 0

    def test_repair_uses_newest_committed_image(self):
        pager, guard, pool, wal = self.make_guarded_wal_pool()
        pid = pager.allocate()
        for value in (0x11, 0x22, 0x33):
            pool.put(pid, fill(value))
            pool.commit()
        pool.flush()
        pool.flush_and_clear()
        pager._file.seek(pid * PAGE_SIZE)
        pager._file.write(fill(0x99))
        assert bytes(pager.read(pid)) == fill(0x33)

    def test_repair_persists_to_data_file(self):
        pager, guard, pool, wal = self.make_guarded_wal_pool()
        pid = pager.allocate()
        pool.put(pid, fill(0x11))
        pool.commit()
        pool.flush()
        pool.flush_and_clear()
        pager._file.seek(pid * PAGE_SIZE)
        pager._file.write(fill(0x99))
        pager.read(pid)
        pager._file.seek(pid * PAGE_SIZE)
        assert pager._file.read(PAGE_SIZE) == fill(0x11)

    def test_uncommitted_image_is_not_a_repair_source(self):
        """Satellite oracle: no *committed* WAL image covering the page
        == typed PageCorruptionError, never a silent answer."""
        pager, guard, pool, wal = self.make_guarded_wal_pool()
        pid = pager.allocate()
        pool.put(pid, fill(0x11))
        pool.commit()
        pool.flush()
        # A newer, uncommitted image must not repair (redo-only rules).
        pool.put(pid, fill(0x22))
        pager._file.seek(pid * PAGE_SIZE)
        pager._file.write(fill(0x99))
        repaired = pager.read(pid)
        assert bytes(repaired) == fill(0x11)

    def test_no_covering_image_raises(self):
        pager, guard, pool, wal = self.make_guarded_wal_pool()
        a = pager.allocate()
        b = pager.allocate()
        pool.put(a, fill(0x11))
        pool.commit()
        pool.flush()
        pool.flush_and_clear()
        # Corrupt b, whose only WAL trace is the allocate-time zero
        # stamp (never logged): no committed image covers it.
        pager._file.seek(b * PAGE_SIZE)
        pager._file.write(fill(0x99))
        with pytest.raises(PageCorruptionError) as excinfo:
            pager.read(b)
        assert not excinfo.value.quarantined
        assert b in guard.quarantined_pages


class TestSidecarPersistence:
    def test_stamps_survive_reopen(self, tmp_path):
        data = str(tmp_path / "d.pg")
        sums = str(tmp_path / "d.pg.sum")
        with PageGuard.open(sums, PAGE_SIZE) as guard:
            pager = Pager.open(data, PAGE_SIZE, guard=guard)
            pid = pager.allocate()
            pager.write(pid, fill(0x11))
            pager.close()
        with PageGuard.open(sums, PAGE_SIZE) as guard:
            assert guard.is_stamped(0)
            pager = Pager.open(data, PAGE_SIZE, guard=guard)
            assert bytes(pager.read(0)) == fill(0x11)
            pager.close()

    def test_corruption_detected_across_reopen(self, tmp_path):
        data = str(tmp_path / "d.pg")
        sums = str(tmp_path / "d.pg.sum")
        with PageGuard.open(sums, PAGE_SIZE) as guard:
            pager = Pager.open(data, PAGE_SIZE, guard=guard)
            pager.allocate()
            pager.write(0, fill(0x11))
            pager.close()
        with open(data, "r+b") as handle:
            handle.seek(5)
            handle.write(b"\xff")
        with PageGuard.open(sums, PAGE_SIZE) as guard:
            pager = Pager.open(data, PAGE_SIZE, guard=guard)
            with pytest.raises(PageCorruptionError):
                pager.read(0)
            pager.close()

    def test_recover_path_restamps_replayed_pages(self, tmp_path):
        data = str(tmp_path / "d.pg")
        wal_path = str(tmp_path / "d.pg.wal")
        sums = str(tmp_path / "d.pg.sum")
        guard = PageGuard.open(sums, PAGE_SIZE)
        pager = Pager.open(data, PAGE_SIZE, guard=guard)
        wal = WriteAheadLog.open(wal_path, PAGE_SIZE)
        pool = BufferPool(pager, capacity=8)
        pool.attach_wal(wal)
        pid = pager.allocate()
        pool.put(pid, fill(0x11))
        pool.commit()
        wal.close()
        pool.close()  # flushes; but corrupt the file afterwards
        with open(data, "r+b") as handle:
            handle.seek(pid * PAGE_SIZE)
            handle.write(fill(0x99))
        result = recover_path(data, wal_path, guard_path=sums)
        assert result.pages_applied >= 1
        with PageGuard.open(sums, PAGE_SIZE) as guard:
            pager = Pager.open(data, PAGE_SIZE, guard=guard)
            assert bytes(pager.read(pid)) == fill(0x11)
            pager.close()


class TestScrub:
    def test_scrub_clean_pager(self):
        pager, guard = guarded_pager()
        for value in (0x11, 0x22, 0x33):
            pid = pager.allocate()
            pager.write(pid, fill(value))
        report = scrub(pager)
        assert report.healthy
        assert report.pages_total == 3
        assert report.pages_ok == 3
        assert report.pages_corrupt == []

    def test_scrub_reports_corrupt_page(self):
        pager, guard = guarded_pager()
        pids = [pager.allocate() for _ in range(3)]
        for pid in pids:
            pager.write(pid, fill(0x40 + pid))
        pager._file.seek(pids[1] * PAGE_SIZE)
        pager._file.write(fill(0x99))
        report = scrub(pager)
        assert not report.healthy
        assert report.pages_corrupt == [pids[1]]
        assert "CORRUPT" in report.render()

    def test_scrub_counts_unstamped(self):
        pager = Pager.in_memory(PAGE_SIZE)
        pid = pager.allocate()
        pager.write(pid, fill(0x11))
        pager.attach_guard(PageGuard(io.BytesIO(), PAGE_SIZE))
        report = scrub(pager)
        assert report.pages_unstamped == 1
        assert report.healthy

    def test_scrub_path_stamp_missing_adopts(self, tmp_path):
        data = str(tmp_path / "d.pg")
        pager = Pager.open(data, PAGE_SIZE)
        pid = pager.allocate()
        pager.write(pid, fill(0x11))
        pager.close()
        # A raw page file has no superblock to sniff the page size from;
        # an empty sidecar records it (the adoption flow for pre-guard
        # files that are not PRIX indexes).
        PageGuard.open(data + ".sum", PAGE_SIZE).close()
        report = scrub_path(data, stamp_missing=True)
        assert report.pages_unstamped == 0  # adopted, folded into ok
        report = scrub_path(data)
        assert report.pages_unstamped == 0
        assert report.pages_ok == 1
        assert os.path.exists(data + ".sum")

    def test_report_as_dict_round_trips(self):
        pager, guard = guarded_pager()
        pager.write(pager.allocate(), fill(0x11))
        report = scrub(pager)
        as_dict = report.as_dict()
        assert as_dict["pages_total"] == 1
        assert as_dict["healthy"] is True

    def test_report_to_json_is_the_canonical_as_dict(self):
        """Regression for the single-serializer contract: both
        `prix scrub --json` and the serve tier's /healthz emit exactly
        this string, so its shape is pinned here."""
        import json
        pager, guard = guarded_pager()
        pager.write(pager.allocate(), fill(0x11))
        report = scrub(pager)
        text = report.to_json()
        assert json.loads(text) == json.loads(
            json.dumps(report.as_dict()))
        # Canonical: sorted keys, deterministic across calls.
        assert text == report.to_json()
        assert list(json.loads(text)) == sorted(json.loads(text))
        # indent= feeds the CLI's pretty mode without changing content.
        assert json.loads(report.to_json(indent=2)) == json.loads(text)


class TestAccountingInvariance:
    def test_guard_never_touches_physical_counters(self):
        """The paper's "Disk IO pages" columns must not move when the
        guard is on: verification, repair bookkeeping and sidecar
        traffic live in the guard_* counters only."""
        def workload(pager):
            pids = [pager.allocate() for _ in range(4)]
            for i, pid in enumerate(pids):
                pager.write(pid, fill(0x10 + i))
            for pid in pids:
                pager.read(pid)

        plain = Pager.in_memory(PAGE_SIZE, stats=IOStats())
        workload(plain)
        guarded, _ = guarded_pager()
        workload(guarded)
        assert (guarded.stats.physical_reads
                == plain.stats.physical_reads)
        assert (guarded.stats.physical_writes
                == plain.stats.physical_writes)
        assert guarded.stats.guard_verifications == 4

    def test_repair_write_is_uncounted(self):
        pager, guard = guarded_pager()
        wal = WriteAheadLog(io.BytesIO(), PAGE_SIZE)
        pool = BufferPool(pager, capacity=8)
        pool.attach_wal(wal)
        pid = pager.allocate()
        pool.put(pid, fill(0x11))
        pool.commit()
        pool.flush()
        pool.flush_and_clear()
        writes_before = pager.stats.physical_writes
        pager._file.seek(pid * PAGE_SIZE)
        pager._file.write(fill(0x99))
        pager.read(pid)
        assert pager.stats.guard_repairs == 1
        assert pager.stats.physical_writes == writes_before
