"""Unit tests for the per-mount circuit breaker (``repro.serve.breaker``).

The clock is injected so every cooldown transition is deterministic:
these tests walk the full closed -> open -> half-open -> closed/reopen
state machine, pin the typed ``circuit-open`` rejection (with the
remaining cooldown as ``Retry-After``), the single-probe discipline,
and the scrub-before-close contract.
"""

import pytest

from repro.serve.breaker import (DEFAULT_COOLDOWN_SECONDS,
                                 DEFAULT_FAILURE_THRESHOLD, STATE_CLOSED,
                                 STATE_HALF_OPEN, STATE_OPEN, TRIPPING_CODES,
                                 CircuitBreaker)
from repro.serve.protocol import ProtocolError
from repro.storage.errors import PageCorruptionError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(threshold=3, cooldown=10.0):
    clock = FakeClock()
    events = []
    breaker = CircuitBreaker(threshold=threshold, cooldown_seconds=cooldown,
                             clock=clock, on_event=events.append)
    return breaker, clock, events


def trip(breaker, name="m", times=3, error=None):
    error = error if error is not None else RuntimeError("io exploded")
    for _ in range(times):
        assert breaker.allow(name) is False
        breaker.record(name, probe=False, error=error)


class TestClosed:
    def test_defaults_match_contract(self):
        assert DEFAULT_FAILURE_THRESHOLD == 5
        assert DEFAULT_COOLDOWN_SECONDS == 2.0
        assert TRIPPING_CODES == {"corruption", "internal"}

    def test_closed_circuit_admits_everything(self):
        breaker, _, events = make_breaker()
        for _ in range(20):
            assert breaker.allow("m") is False
            breaker.record("m", probe=False)
        assert events == []
        assert breaker.snapshot()["m"] == {
            "state": STATE_CLOSED, "consecutive_failures": 0,
            "opened_total": 0}

    def test_success_resets_the_streak(self):
        breaker, _, events = make_breaker(threshold=3)
        trip(breaker, times=2)
        breaker.record("m", probe=False)  # success: streak back to 0
        trip(breaker, times=2)
        assert breaker.snapshot()["m"]["state"] == STATE_CLOSED
        assert events == []

    def test_caller_mistakes_never_trip(self):
        breaker, _, events = make_breaker(threshold=1)
        for code in ("bad-request", "not-found", "budget-exhausted",
                     "over-capacity"):
            breaker.allow("m")
            breaker.record("m", probe=False,
                           error=ProtocolError(code, "nope"))
        assert breaker.snapshot()["m"]["state"] == STATE_CLOSED
        assert events == []

    def test_corruption_and_internal_both_trip(self):
        for error in (PageCorruptionError("page 3"), RuntimeError("boom")):
            breaker, _, events = make_breaker(threshold=2)
            trip(breaker, times=2, error=error)
            assert breaker.snapshot()["m"]["state"] == STATE_OPEN
            assert events == ["circuit-open"]

    def test_record_for_unknown_mount_is_a_noop(self):
        breaker, _, events = make_breaker()
        breaker.record("ghost", probe=False, error=RuntimeError("x"))
        assert breaker.snapshot() == {}
        assert events == []

    def test_mounts_are_independent(self):
        breaker, _, _ = make_breaker(threshold=2)
        trip(breaker, name="sick", times=2)
        assert breaker.allow("healthy") is False
        with pytest.raises(ProtocolError):
            breaker.allow("sick")


class TestOpen:
    def test_opens_at_threshold_with_typed_rejection(self):
        breaker, clock, events = make_breaker(threshold=3, cooldown=10.0)
        trip(breaker, times=3)
        assert events == ["circuit-open"]
        snap = breaker.snapshot()["m"]
        assert snap == {"state": STATE_OPEN, "consecutive_failures": 3,
                        "opened_total": 1}
        with pytest.raises(ProtocolError) as caught:
            breaker.allow("m")
        assert caught.value.code == "circuit-open"
        assert caught.value.http_status == 503
        assert caught.value.retry_after == 10

    def test_retry_after_is_the_ceiled_remaining_cooldown(self):
        breaker, clock, _ = make_breaker(threshold=1, cooldown=10.0)
        trip(breaker, times=1)
        clock.advance(7.5)
        with pytest.raises(ProtocolError) as caught:
            breaker.allow("m")
        assert caught.value.retry_after == 3  # ceil(2.5)
        clock.advance(2.4)  # 0.1s left: floor at 1, never 0
        with pytest.raises(ProtocolError) as caught:
            breaker.allow("m")
        assert caught.value.retry_after == 1


class TestHalfOpen:
    def make_open(self, cooldown=10.0):
        breaker, clock, events = make_breaker(threshold=2, cooldown=cooldown)
        trip(breaker, times=2)
        clock.advance(cooldown)
        return breaker, clock, events

    def test_cooldown_expiry_admits_exactly_one_probe(self):
        breaker, _, events = self.make_open()
        assert breaker.allow("m") is True
        assert events == ["circuit-open", "circuit-half-open"]
        assert breaker.snapshot()["m"]["state"] == STATE_HALF_OPEN
        with pytest.raises(ProtocolError) as caught:
            breaker.allow("m")  # concurrent request while probe in flight
        assert caught.value.code == "circuit-open"
        assert caught.value.retry_after == 1

    def test_probe_success_rescrubs_then_closes(self):
        breaker, _, events = self.make_open()
        assert breaker.allow("m") is True
        scrubs = []
        breaker.record("m", probe=True,
                       rescrub=lambda: scrubs.append(1) or True)
        assert scrubs == [1]
        assert breaker.snapshot()["m"] == {
            "state": STATE_CLOSED, "consecutive_failures": 0,
            "opened_total": 1}
        assert events[-1] == "circuit-close"
        assert breaker.allow("m") is False  # back to normal traffic

    def test_unhealthy_rescrub_reopens(self):
        breaker, clock, events = self.make_open()
        breaker.allow("m")
        breaker.record("m", probe=True, rescrub=lambda: False)
        snap = breaker.snapshot()["m"]
        assert snap["state"] == STATE_OPEN
        assert snap["opened_total"] == 2
        assert events[-1] == "circuit-reopen"
        with pytest.raises(ProtocolError):
            breaker.allow("m")  # a fresh cooldown started

    def test_raising_rescrub_is_an_unhealthy_verdict(self):
        breaker, _, events = self.make_open()
        breaker.allow("m")

        def bad_scrub():
            raise OSError("scrub io died")

        breaker.record("m", probe=True, rescrub=bad_scrub)
        assert breaker.snapshot()["m"]["state"] == STATE_OPEN
        assert events[-1] == "circuit-reopen"

    def test_probe_failure_reopens_immediately(self):
        breaker, clock, events = self.make_open(cooldown=5.0)
        breaker.allow("m")
        breaker.record("m", probe=True, error=RuntimeError("still sick"))
        snap = breaker.snapshot()["m"]
        assert snap["state"] == STATE_OPEN
        assert snap["opened_total"] == 2
        assert events[-1] == "circuit-open"
        clock.advance(5.0)
        assert breaker.allow("m") is True  # the next probe window

    def test_neutral_probe_outcome_returns_the_slot(self):
        breaker, _, _ = self.make_open()
        assert breaker.allow("m") is True
        breaker.record("m", probe=True,
                       error=ProtocolError("budget-exhausted", "later"))
        # The probe proved nothing: still half-open, slot free again.
        assert breaker.snapshot()["m"]["state"] == STATE_HALF_OPEN
        assert breaker.allow("m") is True

    def test_probe_success_without_rescrub_closes(self):
        breaker, _, _ = self.make_open()
        breaker.allow("m")
        breaker.record("m", probe=True)
        assert breaker.snapshot()["m"]["state"] == STATE_CLOSED
