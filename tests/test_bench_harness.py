"""Benchmark harness and reporting smoke tests."""

import pytest

from repro.bench.harness import BenchEnvironment, SystemResult
from repro.bench.reporting import format_table, ratio
from repro.bench.workloads import QUERIES, query_by_id, queries_for


@pytest.fixture(scope="module")
def tiny_env():
    return BenchEnvironment("dblp", scale="tiny")


class TestWorkloads:
    def test_nine_queries(self):
        assert len(QUERIES) == 9
        assert [s.qid for s in QUERIES] == [f"Q{i}" for i in range(1, 10)]

    def test_query_by_id(self):
        assert query_by_id("Q7").corpus == "treebank"
        with pytest.raises(KeyError):
            query_by_id("Q99")

    def test_value_flags(self):
        assert query_by_id("Q1").has_values
        assert not query_by_id("Q2").has_values


class TestEnvironment:
    def test_all_four_systems_run(self, tiny_env):
        results = [tiny_env.run_prix("Q1"),
                   tiny_env.run_twigstack("Q1"),
                   tiny_env.run_twigstack_xb("Q1"),
                   tiny_env.run_vist("Q1")]
        systems = [r.system for r in results]
        assert systems == ["PRIX", "TwigStack", "TwigStackXB", "ViST"]
        prix, ts, xb, _ = results
        assert prix.matches == ts.matches == xb.matches == 6
        for result in results:
            assert result.elapsed > 0
            assert result.pages >= 0

    def test_prix_variant_override(self, tiny_env):
        forced = tiny_env.run_prix("Q1", variant="rp")
        assert forced.extra["variant"] == "rp"

    def test_maxgap_toggle(self, tiny_env):
        off = tiny_env.run_prix("Q1", use_maxgap=False)
        on = tiny_env.run_prix("Q1")
        assert on.matches == off.matches

    def test_measurements_are_cold(self, tiny_env):
        first = tiny_env.run_prix("Q1")
        second = tiny_env.run_prix("Q1")
        # Cold runs hit disk every time.
        assert second.pages == first.pages > 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table("T", ["col", "x"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[2]
        assert len({len(line) for line in lines[3:]}) >= 1

    def test_ratio(self):
        assert ratio(10, 5) == "2.0x"
        assert ratio(3, 0) == "inf"
