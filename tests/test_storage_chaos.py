"""Unit tests for the live chaos layer (``repro.storage.faults``).

Covers the :class:`ChaosSchedule`'s determinism contract (same seed ==
same fault positions, replayable from the ``describe()`` recipe), each
fault kind's semantics through :class:`ChaosBackend` -- transient read
errors, injected latency, the fail-then-heal window, and corrupt-reads
that exercise the guard's WAL read-repair and quarantine-heal paths --
plus the arming switch and the facade/index plumb-through
(``open_backend(chaos=...)``, ``PrixIndex.open(chaos=...)``).
"""

import io

import pytest

from repro.prix.index import IndexOptions, PrixIndex
from repro.storage import (ChaosBackend, ChaosConfig, ChaosSchedule,
                           TransientStorageError, open_backend)
from repro.storage.buffer_pool import BufferPool
from repro.storage.errors import PageCorruptionError
from repro.storage.faults import (CHAOS_KINDS, KIND_CORRUPT_READ,
                                  KIND_FAIL_WINDOW, KIND_READ_ERROR,
                                  KIND_READ_LATENCY)
from repro.storage.guard import PageGuard
from repro.storage.pager import Pager
from repro.storage.wal import WriteAheadLog
from repro.xmlkit.parser import parse_document

PAGE_SIZE = 64


def fill(value, page_size=PAGE_SIZE):
    return bytes([value]) * page_size


def make_pool(*, guard=False, wal=False):
    page_guard = PageGuard(io.BytesIO(), PAGE_SIZE) if guard else None
    pager = Pager.in_memory(PAGE_SIZE, guard=page_guard)
    pool = BufferPool(pager, capacity=8)
    if wal:
        pool.attach_wal(WriteAheadLog(io.BytesIO(), PAGE_SIZE))
    return pool


class TestChaosSchedule:
    def test_same_seed_same_decisions(self):
        config = ChaosConfig(seed=7, read_error_period=3,
                             latency_period=5, corrupt_period=11)
        first = [ChaosSchedule(config).decide(i) for i in range(200)]
        second = [ChaosSchedule(config).decide(i) for i in range(200)]
        assert first == second
        assert any(kind is not None for kind in first)

    def test_different_seeds_diverge(self):
        base = dict(read_error_period=3, latency_period=5,
                    corrupt_period=11)
        a = [ChaosSchedule(ChaosConfig(seed=1, **base)).decide(i)
             for i in range(200)]
        b = [ChaosSchedule(ChaosConfig(seed=2, **base)).decide(i)
             for i in range(200)]
        assert a != b

    def test_fail_first_window_outranks_everything(self):
        schedule = ChaosSchedule(ChaosConfig(seed=0, fail_first=4,
                                             read_error_period=1))
        assert [schedule.decide(i) for i in range(4)] == \
            [KIND_FAIL_WINDOW] * 4
        assert schedule.decide(4) == KIND_READ_ERROR

    def test_period_one_fires_every_op(self):
        schedule = ChaosSchedule(ChaosConfig(seed=3, corrupt_period=1))
        assert all(schedule.decide(i) == KIND_CORRUPT_READ
                   for i in range(20))

    def test_none_periods_never_fire(self):
        schedule = ChaosSchedule(ChaosConfig(seed=3))
        assert all(schedule.decide(i) is None for i in range(100))

    def test_corrupt_bit_is_deterministic_and_in_range(self):
        schedule = ChaosSchedule(ChaosConfig(seed=9, corrupt_period=1))
        bits = [schedule.corrupt_bit(i, PAGE_SIZE) for i in range(50)]
        assert bits == [ChaosSchedule(ChaosConfig(seed=9, corrupt_period=1))
                        .corrupt_bit(i, PAGE_SIZE) for i in range(50)]
        assert all(0 <= bit < PAGE_SIZE * 8 for bit in bits)

    def test_describe_is_a_replay_recipe(self):
        config = ChaosConfig(seed=5, read_error_period=2)
        schedule = ChaosSchedule(config)
        schedule.next_op()
        schedule.record(KIND_READ_ERROR)
        recipe = schedule.describe()
        assert recipe["config"] == config.as_dict()
        assert recipe["ops_seen"] == 1
        assert recipe["injected"][KIND_READ_ERROR] == 1
        assert set(recipe["injected"]) == set(CHAOS_KINDS)


class TestChaosBackendFaults:
    def test_read_error_is_typed_and_transient(self):
        pool = make_pool()
        pid, _ = pool.new_page()
        pool.put(pid, fill(0x11))
        chaos = ChaosBackend(pool, ChaosConfig(seed=1, fail_first=2))
        with pytest.raises(TransientStorageError):
            chaos.get(pid)
        with pytest.raises(TransientStorageError):
            chaos.get(pid)
        # Healed: the fail-first window is over, the bytes were intact.
        assert bytes(chaos.get(pid)) == fill(0x11)

    def test_disarmed_backend_is_transparent(self):
        pool = make_pool()
        pid, _ = pool.new_page()
        pool.put(pid, fill(0x22))
        chaos = ChaosBackend(pool, ChaosConfig(seed=1, fail_first=10),
                             armed=False)
        assert bytes(chaos.get(pid)) == fill(0x22)
        # Disarmed reads claim no ops: arming later still fails reads.
        chaos.set_armed(True)
        with pytest.raises(TransientStorageError):
            chaos.get(pid)

    def test_latency_injection_proceeds_with_correct_bytes(self):
        pool = make_pool()
        pid, _ = pool.new_page()
        pool.put(pid, fill(0x33))
        chaos = ChaosBackend(pool, ChaosConfig(seed=1, latency_period=1,
                                               latency_ms=0.01))
        assert bytes(chaos.get(pid)) == fill(0x33)
        assert chaos.chaos_describe()["injected"][KIND_READ_LATENCY] == 1

    def test_writes_and_lifecycle_are_never_faulted(self):
        pool = make_pool()
        chaos = ChaosBackend(pool, ChaosConfig(seed=1, fail_first=10 ** 6))
        pid, _ = chaos.new_page()
        chaos.put(pid, fill(0x44))
        chaos.mark_dirty(pid)
        chaos.commit()
        chaos.flush()
        assert chaos.page_size == PAGE_SIZE
        assert chaos.stats is pool.stats

    def test_injection_counts_are_not_page_traffic(self):
        pool = make_pool()
        pid, _ = pool.new_page()
        pool.put(pid, fill(0x55))
        pool.flush()
        pool.flush_and_clear()
        chaos = ChaosBackend(pool, ChaosConfig(seed=1, fail_first=3))
        before = pool.stats.read("physical_reads")
        for _ in range(3):
            with pytest.raises(TransientStorageError):
                chaos.get(pid)
        # Three rejected reads never reached the pager.
        assert pool.stats.read("physical_reads") == before


class TestCorruptRead:
    def test_repaired_from_committed_wal_image(self):
        """The PR 4 read-repair path, driven by injection: a corrupt
        read over a committed WAL image is healed transparently and the
        caller sees the true bytes."""
        pool = make_pool(guard=True, wal=True)
        pid, _ = pool.new_page()
        pool.put(pid, fill(0x66))
        pool.commit()
        pool.flush()
        pool.flush_and_clear()
        chaos = ChaosBackend(pool, ChaosConfig(seed=2, corrupt_period=1))
        assert bytes(chaos.get(pid)) == fill(0x66)
        assert pool.stats.guard_repairs == 1
        assert chaos.chaos_describe()["injected"][KIND_CORRUPT_READ] == 1

    def test_unrepairable_corruption_is_typed_then_heals(self):
        """Without a covering WAL image the injected corruption is a
        typed PageCorruptionError -- and because the durable bytes were
        never actually wrong, the synthetic quarantine is healed so the
        retry succeeds (chaos must not wedge the mount forever)."""
        pool = make_pool(guard=True, wal=False)
        pid, _ = pool.new_page()
        pool.put(pid, fill(0x77))
        pool.flush()
        pool.flush_and_clear()
        chaos = ChaosBackend(pool, ChaosConfig(seed=2, corrupt_period=2))
        outcomes = []
        for _ in range(6):
            try:
                outcomes.append(bytes(chaos.get(pid)))
            except PageCorruptionError:
                outcomes.append("corrupt")
        assert "corrupt" in outcomes
        assert fill(0x77) in outcomes
        # Every successful read returned exactly the true image.
        assert set(outcomes) <= {"corrupt", fill(0x77)}

    def test_unguarded_page_downgrades_to_transient(self):
        pool = make_pool(guard=False)
        pid, _ = pool.new_page()
        pool.put(pid, fill(0x88))
        pool.flush()
        pool.flush_and_clear()
        chaos = ChaosBackend(pool, ChaosConfig(seed=2, corrupt_period=1))
        with pytest.raises(TransientStorageError) as caught:
            chaos.get(pid)
        assert "downgraded" in str(caught.value)


class TestPlumbing:
    def test_open_backend_wraps_when_configured(self, tmp_path):
        path = tmp_path / "pages.bin"
        plain = open_backend(str(path), PAGE_SIZE)
        pid, _ = plain.new_page()
        plain.put(pid, fill(0x99))
        plain.flush()
        plain.close()
        config = ChaosConfig(seed=4, fail_first=1)
        wrapped = open_backend(str(path), PAGE_SIZE, chaos=config)
        assert isinstance(wrapped, ChaosBackend)
        assert wrapped.kind == "chaos"
        with pytest.raises(TransientStorageError):
            wrapped.get(pid)
        assert bytes(wrapped.get(pid)) == fill(0x99)
        wrapped.close()
        assert open_backend(str(path), PAGE_SIZE, chaos=None).kind == "file"

    def test_prix_index_open_disarms_during_attach(self, tmp_path):
        """Catalog/attach reads must not consume (or trip) the fault
        schedule: with fail_first large enough to kill any attach read,
        the open still succeeds and the *first query* draws the fault."""
        path = str(tmp_path / "chaos.idx")
        index = PrixIndex.build(
            [parse_document("<a><b>x</b></a>", 1)],
            IndexOptions(path=path))
        index.save()
        index.close()
        config = ChaosConfig(seed=6, fail_first=2)
        index = PrixIndex.open(path, chaos=config)
        try:
            with pytest.raises(TransientStorageError):
                index.query("//a/b")
            # The schedule heals; the same query then succeeds exactly.
            for _ in range(4):
                try:
                    result = index.query("//a/b")
                    break
                except TransientStorageError:
                    continue
            assert sorted(result.doc_ids) == [1]
        finally:
            index.close()
