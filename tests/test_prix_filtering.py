"""Filtering (Algorithm 1) tests over a real index."""

from repro.datasets import figure2_query
from repro.prix.filtering import FilterStats, find_subsequences
from repro.prix.index import PrixIndex, VARIANT_REGULAR
from repro.prix.plan import build_plan
from repro.query.twig import collapse
from repro.query.xpath import parse_xpath


def run_filter(index, xpath_or_pattern, use_maxgap=True, extended=False):
    pattern = (parse_xpath(xpath_or_pattern)
               if isinstance(xpath_or_pattern, str) else xpath_or_pattern)
    plan = build_plan(collapse(pattern), extended=extended)
    variant = index._variants["ep" if extended else "rp"]
    stats = FilterStats()
    maxgap = variant.maxgap if use_maxgap else None
    return find_subsequences(plan, variant.symbol_index,
                             variant.docid_index, variant.root_range,
                             maxgap_table=maxgap, stats=stats)


class TestSubsequenceMatching:
    def test_paper_query_found(self, fig2_doc):
        index = PrixIndex.build([fig2_doc])
        candidates, stats = run_filter(index, figure2_query())
        positions = {pos for _, pos in candidates}
        # Example 2/6: LPS(Q)=B A E D A matches at (3, 7, 11, 13, 14)
        # among possibly other subsequences (e.g. via position 6's B or
        # position 9's A).
        assert (3, 7, 11, 13, 14) in positions
        for docs, _ in candidates:
            assert docs == (1,)

    def test_positions_strictly_increasing(self, fig2_doc):
        index = PrixIndex.build([fig2_doc])
        candidates, _ = run_filter(index, figure2_query())
        for _, positions in candidates:
            assert all(a < b for a, b in zip(positions, positions[1:]))

    def test_no_match_for_absent_label(self, fig2_doc):
        index = PrixIndex.build([fig2_doc])
        candidates, _ = run_filter(index, "//ZZZ/A")
        assert candidates == []

    def test_multiple_documents_share_terminal(self, fig2_doc):
        from repro.xmlkit.tree import copy_tree, Document
        twin = Document(copy_tree(fig2_doc.root), doc_id=2)
        index = PrixIndex.build([fig2_doc, twin])
        candidates, _ = run_filter(index, figure2_query())
        docs = {doc for doc_tuple, _ in candidates for doc in doc_tuple}
        assert docs == {1, 2}

    def test_stats_counted(self, fig2_doc):
        index = PrixIndex.build([fig2_doc])
        _, stats = run_filter(index, figure2_query())
        assert stats.range_queries > 0
        assert stats.nodes_visited >= stats.candidates


class TestMaxGapPruning:
    def test_no_false_dismissals(self, tiny_dblp):
        """Theorem 4: pruning never changes the final answer."""
        index = PrixIndex.build(tiny_dblp.documents)
        for xpath in ('//inproceedings[./author="Jim Gray"][./year="1990"]',
                      "//www[./editor]/url",
                      "//inproceedings/author"):
            pattern = parse_xpath(xpath)
            with_pruning = index.query(pattern, use_maxgap=True)
            without = index.query(pattern, use_maxgap=False)
            assert {m.canonical for m in with_pruning} == \
                {m.canonical for m in without}

    def test_pruning_reduces_work(self, tiny_treebank):
        index = PrixIndex.build(tiny_treebank.documents)
        pattern = parse_xpath("//NP/PP/NP[./NNS_OR_NN][./NN]")
        _, pruned_stats = index.query_with_stats(pattern, use_maxgap=True)
        _, full_stats = index.query_with_stats(pattern, use_maxgap=False)
        assert pruned_stats.filter.nodes_visited <= \
            full_stats.filter.nodes_visited
        assert pruned_stats.filter.pruned_by_maxgap > 0

    def test_paper_example_cb_pruning(self):
        """Section 5.4's CB example: MaxGap discards distant CB pairs."""
        from repro.xmlkit.tree import Document, element
        # Tree P of Figure 5: C with two children early, B parent.
        # Build a tree where label C's children span at most 1 and two
        # C-occurrences sit far apart in the LPS.
        root = element("A")
        b = element("B")
        c1 = element("C")
        c1.append(element("X"))
        c1.append(element("Y"))
        b.append(c1)
        filler = element("F")
        node = filler
        for _ in range(6):
            node = node.append(element("F"))
        b.append(filler)
        c2 = element("C")
        c2.append(element("Z"))
        b.append(c2)
        root.append(b)
        index = PrixIndex.build([Document(root, doc_id=1)])
        candidates_pruned, stats_pruned = run_filter(index, "//B/C/X")
        candidates_full, stats_full = run_filter(index, "//B/C/X",
                                                 use_maxgap=False)
        final_pruned = {pos for _, pos in candidates_pruned}
        final_full = {pos for _, pos in candidates_full}
        # Same true candidates survive...
        assert final_pruned <= final_full
        # ...but pruning inspected no more nodes.
        assert stats_pruned.nodes_visited <= stats_full.nodes_visited
