"""Fuzz-style robustness tests for the XML tokenizer and parser.

The contract: whatever bytes arrive, ``tokenize`` / ``parse_document``
/ ``split_documents`` either succeed or raise the *typed*
:class:`~repro.xmlkit.errors.XMLSyntaxError` (a ``ValueError``).  They
never escape with an uncaught ``IndexError``/``AttributeError``/
``RecursionError``-style exception and never hang -- malformed input is
an expected environmental condition for an index that ingests
user-supplied documents, not a programming error.

Inputs come from two directions: a corpus of hand-written adversarial
fragments (every tokenizer error path, plus shapes like interleaved
close tags that exercise the parser's stack discipline), and seeded
random mutations of well-formed documents (``helpers.mutate_text``).
A failing case prints its seed, which reproduces the exact input.
"""

import random

import pytest

from helpers import make_random_document, mutate_text
from repro.xmlkit.errors import XMLSyntaxError
from repro.xmlkit.parser import parse_document, parse_fragment, \
    split_documents
from repro.xmlkit.serializer import serialize
from repro.xmlkit.tokenizer import tokenize

#: Hand-picked adversarial inputs; each is malformed in a distinct way.
ADVERSARIAL = [
    "",                                   # empty document
    "   \n\t  ",                          # whitespace only
    "<",                                  # lone angle bracket
    "<a",                                 # unterminated start tag
    "<a>",                                # unclosed element
    "</a>",                               # close without open
    "<a></b>",                            # mismatched close
    "<a><b></a></b>",                     # interleaved close tags
    "<a><b></a>",                         # close skips an open element
    "<a/><b/>",                           # multiple roots
    "text<a/>",                           # data before the root
    "<a/>trailing",                       # data after the root
    "<a>&unknown;</a>",                   # undefined entity
    "<a>&amp</a>",                        # entity missing semicolon
    "<a>&#x;</a>",                        # empty character reference
    "<a>&</a>",                           # bare ampersand
    "<a attr></a>",                       # attribute without value
    "<a attr=>",                          # attribute without quoted value
    "<a attr='x></a>",                    # unterminated attribute value
    "<a 1bad='x'></a>",                   # malformed attribute name
    "<!-- unterminated",                  # unterminated comment
    "<![CDATA[ unterminated",             # unterminated CDATA
    "<!DOCTYPE unterminated",             # unterminated DOCTYPE
    "<? unterminated",                    # unterminated PI
    "<a>\x00</a>",                        # NUL byte in character data
    "<a\x00/>",                           # NUL byte in a tag
    "<a><![CDATA[]]></a><a/>",            # CDATA then second root
    "< a/>",                              # space before the tag name
    "<//>",                               # empty end tag
    "<a></ a>",                           # space inside the end tag
    "<a" + "a" * 5000,                    # long unterminated tag
    "<a>" * 2000,                         # deep unclosed nesting
]


def assert_typed_or_ok(callable_, text):
    """Run one entry point; any failure must be XMLSyntaxError."""
    try:
        callable_(text)
    except XMLSyntaxError:
        pass
    # Anything else propagates and fails the test with its real type.


@pytest.mark.parametrize("text", ADVERSARIAL,
                         ids=lambda t: repr(t[:24]))
def test_adversarial_inputs_raise_typed_errors(text):
    for entry in (lambda t: list(tokenize(t)), parse_fragment,
                  lambda t: parse_document(t, 1),
                  lambda t: split_documents(t)):
        assert_typed_or_ok(entry, text)


@pytest.mark.parametrize("text", ["<a>", "<a></b>", "<a>&bad;</a>",
                                  "<!-- x"])
def test_malformed_inputs_actually_raise(text):
    """The sentinel cases must *fail*, not be silently accepted."""
    with pytest.raises(XMLSyntaxError):
        parse_document(text, 1)


def test_error_is_a_value_error_with_offset():
    with pytest.raises(ValueError) as excinfo:
        parse_document("<a><b></a></b>", 1)
    assert isinstance(excinfo.value, XMLSyntaxError)
    with pytest.raises(XMLSyntaxError) as excinfo:
        list(tokenize("<a>&nope;</a>"))
    assert excinfo.value.offset is not None


@pytest.mark.parametrize("seed", range(200))
def test_mutated_documents_never_escape_typed_errors(seed):
    rng = random.Random(seed)
    document = make_random_document(seed)
    text = serialize(document)
    mutated = mutate_text(rng, text, mutations=rng.randint(1, 4))
    try:
        parsed = parse_document(mutated, 1)
    except XMLSyntaxError:
        return
    # Survivors must be genuinely parseable: round-trip them.
    assert parse_document(serialize(parsed), 1) is not None


@pytest.mark.parametrize("seed", range(50))
def test_mutated_corpus_files_never_escape_typed_errors(seed):
    """split_documents walks records; damage must not desync it."""
    rng = random.Random(seed)
    parts = "".join(serialize(make_random_document(seed * 7 + i)).strip()
                    for i in range(3))
    text = f"<corpus>{parts}</corpus>"
    mutated = mutate_text(rng, text, mutations=rng.randint(1, 3))
    try:
        docs = split_documents(mutated)
    except XMLSyntaxError:
        return
    assert isinstance(docs, list)
