"""Virtual trie and labeling tests (Section 5.2)."""

import random

import pytest

from repro.trie.labeling import (BulkDFSLabeler, DynamicLabeler,
                                 ScopeUnderflowError, _Scope)
from repro.trie.trie import SequenceTrie


def build_trie(sequences):
    trie = SequenceTrie()
    for doc_id, labels in enumerate(sequences, start=1):
        trie.insert(labels, doc_id)
    return trie


class TestTrieConstruction:
    def test_shared_prefix_shares_nodes(self):
        trie = build_trie([("a", "b", "c"), ("a", "b", "d")])
        assert trie.node_count == 4  # a, b, c, d

    def test_identical_sequences_share_terminal(self):
        trie = build_trie([("a", "b"), ("a", "b"), ("a", "b")])
        assert trie.node_count == 2
        assert trie.max_path_sharing() == 3

    def test_sequence_count(self):
        trie = build_trie([("a",), ("b",), ("a",)])
        assert trie.sequence_count == 3

    def test_path_count(self):
        trie = build_trie([("a", "b"), ("a", "c"), ("d",)])
        assert trie.path_count() == 3

    def test_levels_are_positions(self):
        trie = build_trie([("x", "y", "z")])
        node = trie.root
        for expected_level, label in enumerate(("x", "y", "z"), start=1):
            node = node.children[label]
            assert node.level == expected_level

    def test_terminal_doc_ids(self):
        trie = SequenceTrie()
        end = trie.insert(("a", "b"), 42)
        assert end.doc_ids == [42]

    def test_empty_sequence_terminates_at_root(self):
        trie = SequenceTrie()
        trie.insert((), 1)
        assert trie.root.doc_ids == [1]


def check_containment(trie):
    """Child ranges nest inside the parent's; siblings are disjoint.

    Only LeftPos values ever serve as query keys, so a child may share
    its parent's right boundary (the dynamic labeler hands the last
    carve the tail of the scope); left boundaries must be strictly
    inside.
    """
    stack = [trie.root]
    while stack:
        node = stack.pop()
        children = sorted(node.children.values(), key=lambda c: c.left)
        for child in children:
            assert node.left < child.left
            assert child.right <= node.right
            assert child.left < child.right
            stack.append(child)
        for first, second in zip(children, children[1:]):
            assert first.right <= second.left


class TestBulkDFSLabeler:
    def test_containment_property(self):
        rng = random.Random(1)
        sequences = [tuple(rng.choice("abc") for _ in range(rng.randint(1, 8)))
                     for _ in range(50)]
        trie = build_trie(sequences)
        BulkDFSLabeler().label(trie)
        check_containment(trie)

    def test_descendant_range_query_semantics(self):
        trie = build_trie([("a", "b", "c"), ("a", "d")])
        BulkDFSLabeler().label(trie)
        a_node = trie.root.children["a"]
        descendants = [n for n in trie.iter_nodes()
                       if a_node.left < n.left < a_node.right
                       and n is not a_node]
        labels = sorted(n.label for n in descendants)
        assert labels == ["b", "c", "d"]

    def test_gap_free(self):
        trie = build_trie([("a", "b"), ("c",)])
        left, right = BulkDFSLabeler().label(trie)
        # 2 ids per node (including the root) with no gaps.
        assert right - left + 1 == 2 * (trie.node_count + 1)


class TestDynamicLabeler:
    def test_containment_property(self):
        rng = random.Random(2)
        sequences = [tuple(rng.choice("ab") for _ in range(rng.randint(1, 6)))
                     for _ in range(30)]
        trie = build_trie(sequences)
        DynamicLabeler(max_range=2 ** 63, alpha=3).label(trie)
        check_containment(trie)

    def test_huge_range_never_underflows(self):
        rng = random.Random(3)
        sequences = [tuple(rng.choice("abcd")
                           for _ in range(rng.randint(1, 20)))
                     for _ in range(100)]
        trie = build_trie(sequences)
        labeler = DynamicLabeler(max_range=2 ** 63, alpha=4)
        labeler.label(trie)
        assert labeler.underflows == 0
        check_containment(trie)

    def test_small_range_underflows_and_recovers(self):
        rng = random.Random(4)
        sequences = [tuple(rng.choice("abcd")
                           for _ in range(rng.randint(8, 25)))
                     for _ in range(200)]
        trie = build_trie(sequences)
        labeler = DynamicLabeler(max_range=2 ** 16, alpha=0)
        labeler.label(trie)
        assert labeler.underflows >= 1
        assert labeler.rebuilds >= 1
        check_containment(trie)  # fallback still labels correctly

    def test_alpha_preallocation_reduces_underflows(self):
        """Ablation A3's core claim at unit scale: pre-allocating ranges
        for the frequent prefixes avoids underflows a pure dynamic
        scheme hits."""
        rng = random.Random(5)
        base = [tuple(rng.choice("ab") for _ in range(12))
                for _ in range(6)]
        sequences = [base[i % len(base)] for i in range(300)]
        trie = build_trie(sequences)

        tight = 2 ** 24
        no_prefix = DynamicLabeler(max_range=tight, alpha=0,
                                   fanout_guess=64)
        no_prefix.label(build_trie(sequences))
        with_prefix = DynamicLabeler(max_range=tight, alpha=6,
                                     fanout_guess=64)
        with_prefix.label(trie)
        assert with_prefix.underflows <= no_prefix.underflows

    def test_tiny_range_rejected(self):
        with pytest.raises(ValueError):
            DynamicLabeler(max_range=4)

    def test_scope_carve_underflow(self):
        scope = _Scope(1, 10)
        scope.carve(4)
        with pytest.raises(ScopeUnderflowError):
            scope.carve(100)
