"""prixarch tests: manifest, layering, effect inference, conformance.

Covers the architecture tier end to end: the ``.prixarch.toml``
loader (including the 3.10 fallback parser), the import-graph layering
rule with witness chains, the seeded+transitive effect inference and
its ``# prixeffect:`` contracts, ``# priximpl:`` conformance, the evil
twin's exact seeded findings, and the runner satellites
(``--jobs``/``--prune-baseline``/``--explain``/``--effect-report``).
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.arch import (EFFECTS, LayeringRule, Manifest,
                                 ManifestError, ProjectModel, arch_check,
                                 module_name_for, parse_manifest)
from repro.analysis.arch.manifest import _parse_toml_subset
from repro.analysis.core import SourceFile
from repro.analysis.reporting import render_json
from repro.analysis.runner import (LintResult, lint_paths, main,
                                   rules_by_name)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
EVIL_TWIN = Path(__file__).resolve().parent / "eviltwin_backend.py"

MANIFEST_TEXT = """
[prixarch]
version = 1

[layers]
foundation = ["repro.xmlkit", "repro.prufer"]
logical = ["repro.trie", "repro.prix"]
storage-api = ["repro.storage", "repro.storage.backend"]
storage-impl = ["repro.storage.pager"]
app = ["repro.cli"]

[allowed]
foundation = []
logical = ["foundation", "storage-api"]
storage-api = ["storage-impl"]
storage-impl = ["storage-api"]
app = "*"
"""


class TestManifest:
    def test_layer_membership_longest_prefix_wins(self):
        manifest = parse_manifest(MANIFEST_TEXT)
        assert manifest.layer_of("repro.storage.pager") == "storage-impl"
        assert manifest.layer_of("repro.storage.backend") == "storage-api"
        assert manifest.layer_of("repro.storage.records") == "storage-api"
        assert manifest.layer_of("repro.prix.index") == "logical"
        assert manifest.layer_of("repro.datasets") is None

    def test_star_means_unconstrained(self):
        manifest = parse_manifest(MANIFEST_TEXT)
        assert manifest.allowed_for("app") == "*"
        assert manifest.allowed_for("foundation") == frozenset()

    def test_allowed_naming_unknown_layer_rejected(self):
        with pytest.raises(ManifestError):
            Manifest({"a": ["pkg"]}, {"ghost": ["a"]})

    def test_layer_allowing_unknown_layer_rejected(self):
        with pytest.raises(ManifestError):
            Manifest({"a": ["pkg"]}, {"a": ["ghost"]})

    def test_duplicate_prefix_rejected(self):
        with pytest.raises(ManifestError):
            Manifest({"a": ["pkg"], "b": ["pkg"]}, {})

    def test_missing_layers_table_rejected(self):
        with pytest.raises(ManifestError):
            parse_manifest("[prixarch]\nversion = 1\n")

    def test_fallback_parser_matches_tomllib(self):
        """The 3.10 mini-parser and tomllib agree on the manifest subset."""
        tomllib = pytest.importorskip("tomllib")
        assert _parse_toml_subset(MANIFEST_TEXT, "m") == tomllib.loads(
            MANIFEST_TEXT)

    def test_fallback_parser_multiline_arrays(self):
        document = _parse_toml_subset(
            '[layers]\nfoo = [\n    "a",  # comment\n    "b",\n]\n', "m")
        assert document == {"layers": {"foo": ["a", "b"]}}

    def test_repository_manifest_parses(self):
        manifest = parse_manifest(
            (REPO_ROOT / ".prixarch.toml").read_text())
        assert manifest.layer_of("repro.prix.index") == "logical"
        assert manifest.layer_of("repro.storage.wal") == "storage-impl"
        assert manifest.layer_of("repro.storage.codec") == "storage-api"


class TestModuleNames:
    def test_repro_rooted_paths(self):
        assert (module_name_for("src/repro/storage/pager.py")
                == "repro.storage.pager")
        assert module_name_for("src/repro/storage/__init__.py") == \
            "repro.storage"

    def test_unrooted_paths_use_stem(self):
        assert module_name_for("tests/eviltwin_backend.py") == \
            "eviltwin_backend"


def _write_tree(tmp_path, files, manifest):
    (tmp_path / ".prixarch.toml").write_text(manifest)
    for name, text in files.items():
        (tmp_path / name).write_text(textwrap.dedent(text))
    return tmp_path


_SMALL_MANIFEST = """
[layers]
high = ["high"]
low = ["low"]

[allowed]
high = []
low = []
"""


class TestLayering:
    def test_direct_violation_reports_witness_chain(self, tmp_path):
        _write_tree(tmp_path,
                    {"high.py": "import low\n", "low.py": "X = 1\n"},
                    _SMALL_MANIFEST)
        result = lint_paths([tmp_path], rules=(LayeringRule,))
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "layering"
        assert "high -> low" in finding.message
        assert finding.line == 1

    def test_indirect_violation_through_unlayered_module(self, tmp_path):
        _write_tree(tmp_path,
                    {"high.py": "import helper\n",
                     "helper.py": "import low\n",
                     "low.py": "X = 1\n"},
                    _SMALL_MANIFEST)
        result = lint_paths([tmp_path], rules=(LayeringRule,))
        assert len(result.findings) == 1
        assert "high -> helper -> low" in result.findings[0].message

    def test_sanctioned_doorway_stops_traversal(self, tmp_path):
        manifest = """
        [layers]
        high = ["high"]
        door = ["door"]
        low = ["low"]

        [allowed]
        high = ["door"]
        door = ["low"]
        low = []
        """
        _write_tree(tmp_path,
                    {"high.py": "import door\n",
                     "door.py": "import low\n",
                     "low.py": "X = 1\n"},
                    textwrap.dedent(manifest))
        result = lint_paths([tmp_path], rules=(LayeringRule,))
        assert result.findings == []

    def test_function_local_import_still_checked(self, tmp_path):
        _write_tree(tmp_path,
                    {"high.py": "def f():\n    import low\n    return low\n",
                     "low.py": "X = 1\n"},
                    _SMALL_MANIFEST)
        result = lint_paths([tmp_path], rules=(LayeringRule,))
        assert len(result.findings) == 1
        assert result.findings[0].line == 2

    def test_inline_suppression_silences(self, tmp_path):
        _write_tree(tmp_path,
                    {"high.py": "import low  # prixlint: disable=layering\n",
                     "low.py": "X = 1\n"},
                    _SMALL_MANIFEST)
        result = lint_paths([tmp_path], rules=(LayeringRule,))
        assert result.findings == []

    def test_no_manifest_means_no_findings(self, tmp_path):
        (tmp_path / "high.py").write_text("import low\n")
        (tmp_path / "low.py").write_text("X = 1\n")
        result = lint_paths([tmp_path], rules=(LayeringRule,))
        assert result.findings == []

    def test_src_tree_has_zero_layering_violations(self):
        """The PR acceptance bar: the shipped layer map holds."""
        result = lint_paths([SRC], rules=(LayeringRule,))
        assert result.findings == []


def _model(**files):
    sources = [SourceFile(name, textwrap.dedent(text))
               for name, text in files.items()]
    return ProjectModel(sources)


class TestEffectInference:
    def test_receiver_heuristics_seed_effects(self):
        model = _model(**{"m.py": """
            def touch(pager, wal, stats, latch):
                with latch:
                    pager.read(0)
                    wal.log_page(0, b"")
                    stats.add(physical_reads=1)
            """})
        effects = model.functions["m:touch"].effects
        assert effects == {"latch-acquire", "pager-io", "wal-io",
                           "stats-mutate"}

    def test_allocate_seeds_alloc_page(self):
        model = _model(**{"m.py": """
            def grow(pager):
                return pager.allocate()
            """})
        assert model.functions["m:grow"].effects == {"pager-io",
                                                     "alloc-page"}

    def test_open_seeds_raw_io(self):
        model = _model(**{"m.py": """
            def peek(path):
                with open(path, "rb") as handle:
                    return handle.read(1)
            """})
        assert "raw-io" in model.functions["m:peek"].effects

    def test_effects_propagate_transitively(self):
        model = _model(**{"m.py": """
            def inner(pager):
                return pager.read(0)

            def outer(pager):
                return inner(pager)
            """})
        assert "pager-io" in model.functions["m:outer"].effects

    def test_propagation_through_methods_and_classes(self):
        model = _model(**{"m.py": """
            class Store:
                def load(self, pager):
                    return pager.read(0)

                def fetch(self, pager):
                    return self.load(pager)

            def use():
                store = Store()
                return store.fetch(None)
            """})
        assert "pager-io" in model.functions["m:Store.fetch"].effects
        assert "pager-io" in model.functions["m:use"].effects

    def test_cross_module_propagation(self):
        model = _model(**{
            "a.py": """
                def source(pager):
                    return pager.read(0)
                """,
            "b.py": """
                from a import source

                def sink(pager):
                    return source(pager)
                """})
        assert "pager-io" in model.functions["b:sink"].effects

    def test_vocabulary_is_closed(self):
        assert EFFECTS == {"raw-io", "pager-io", "wal-io", "latch-acquire",
                           "stats-mutate", "alloc-page"}


class TestEffectContract:
    def _lint(self, tmp_path, text):
        (tmp_path / "m.py").write_text(textwrap.dedent(text))
        rule = rules_by_name()["effect-contract"]
        return lint_paths([tmp_path / "m.py"], rules=(rule,))

    def test_undeclared_effect_is_reported(self, tmp_path):
        result = self._lint(tmp_path, """
            def f(pager):  # prixeffect: declares=latch-acquire
                return pager.read(0)
            """)
        assert len(result.findings) == 1
        assert "pager-io" in result.findings[0].message

    def test_declaration_is_an_upper_bound(self, tmp_path):
        """Over-declaring is legal: substrates may do less than allowed."""
        result = self._lint(tmp_path, """
            def f(pager):  # prixeffect: declares=pager-io,latch-acquire
                return 1
            """)
        assert result.findings == []

    def test_unknown_effect_name_rejected(self, tmp_path):
        result = self._lint(tmp_path, """
            def f():  # prixeffect: declares=quantum-io
                return 1
            """)
        assert len(result.findings) == 1
        assert "unknown effect" in result.findings[0].message

    def test_empty_declaration_means_pure(self, tmp_path):
        result = self._lint(tmp_path, """
            def f(path):  # prixeffect: declares=
                return open(path)
            """)
        assert len(result.findings) == 1
        assert "raw-io" in result.findings[0].message


_PROTOCOL = """
    from typing import Protocol

    class Thing(Protocol):
        @property
        def kind(self): ...

        def ping(self, token):  # prixeffect: declares=latch-acquire
            ...
"""


class TestConformance:
    def _lint(self, tmp_path, impl_text):
        (tmp_path / "proto.py").write_text(textwrap.dedent(_PROTOCOL))
        (tmp_path / "impl.py").write_text(textwrap.dedent(impl_text))
        rule = rules_by_name()["backend-conformance"]
        return lint_paths([tmp_path], rules=(rule,))

    def test_conforming_impl_is_clean(self, tmp_path):
        result = self._lint(tmp_path, """
            class Good:  # priximpl: Thing
                kind = "good"

                def ping(self, token):
                    with self._latch:
                        return token
            """)
        assert result.findings == []

    def test_missing_method_reported(self, tmp_path):
        result = self._lint(tmp_path, """
            class Bad:  # priximpl: Thing
                kind = "bad"
            """)
        assert any("missing method 'ping'" in f.message
                   for f in result.findings)

    def test_missing_attribute_reported(self, tmp_path):
        result = self._lint(tmp_path, """
            class Bad:  # priximpl: Thing
                def ping(self, token):
                    return token
            """)
        assert any("missing attribute 'kind'" in f.message
                   for f in result.findings)

    def test_signature_mismatch_reported(self, tmp_path):
        result = self._lint(tmp_path, """
            class Bad:  # priximpl: Thing
                kind = "bad"

                def ping(self):
                    return None
            """)
        assert any("signature" in f.message for f in result.findings)

    def test_excess_effect_reported(self, tmp_path):
        result = self._lint(tmp_path, """
            class Bad:  # priximpl: Thing
                kind = "bad"

                def ping(self, token):
                    with open(token) as handle:
                        return handle.read()
            """)
        assert any("raw-io" in f.message for f in result.findings)

    def test_unknown_protocol_reported(self, tmp_path):
        result = self._lint(tmp_path, """
            class Bad:  # priximpl: Ghost
                pass
            """)
        assert any("Ghost" in f.message for f in result.findings)

    def test_inherited_obligations_resolve_through_mro(self, tmp_path):
        result = self._lint(tmp_path, """
            class Base:
                kind = "base"

                def ping(self, token):
                    return token

            class Derived(Base):  # priximpl: Thing
                pass
            """)
        assert result.findings == []


class TestEvilTwin:
    """The crash dummy yields exactly the seeded findings."""

    def test_exact_seeded_findings(self):
        result = lint_paths([SRC, EVIL_TWIN])
        twins = [f for f in result.findings
                 if f.path.endswith("eviltwin_backend.py")]
        assert result.findings == twins          # src itself stays clean
        assert [f.rule for f in twins] == [
            "effect-contract", "backend-conformance",
            "backend-conformance", "backend-conformance"]
        assert "raw-io" in twins[0].message
        assert "wal-io" in twins[1].message
        assert "signature" in twins[2].message
        assert "RuntimeError" in twins[3].message

    def test_layering_bait_caught_under_test_manifest(self):
        manifest = parse_manifest(textwrap.dedent("""
            [layers]
            logical = ["eviltwin_backend"]
            storage-api = ["repro.storage.backend"]
            storage-impl = ["repro.storage.pager"]

            [allowed]
            logical = ["storage-api"]
            storage-api = ["storage-impl"]
            storage-impl = ["storage-api"]
            """))
        sources = [
            SourceFile("tests/eviltwin_backend.py", EVIL_TWIN.read_text()),
            SourceFile("src/repro/storage/backend.py",
                       (SRC / "storage" / "backend.py").read_text()),
            SourceFile("src/repro/storage/pager.py",
                       (SRC / "storage" / "pager.py").read_text()),
        ]
        findings = arch_check(sources, manifest,
                              rule_classes=(LayeringRule,))
        assert len(findings) == 1
        assert "eviltwin_backend -> repro.storage.pager" in \
            findings[0].message


class TestRunnerSatellites:
    def test_jobs_output_is_deterministic(self, tmp_path):
        for index in range(3):
            (tmp_path / f"m{index}.py").write_text(
                "def f(pager):  # prixeffect: declares=latch-acquire\n"
                "    return pager.read(0)\n")
        serial = lint_paths([tmp_path], jobs=1)
        parallel = lint_paths([tmp_path], jobs=3)
        assert serial.findings == parallel.findings
        assert serial.files_checked == parallel.files_checked == 3
        assert len(serial.findings) == 3

    def test_prune_baseline_drops_stale_entries(self, tmp_path, capsys):
        target = tmp_path / "m.py"
        target.write_text(
            "def f(pager):  # prixeffect: declares=latch-acquire\n"
            "    return pager.read(0)\n")
        baseline_path = tmp_path / "baseline.json"
        assert main([str(target), "--write-baseline",
                     str(baseline_path)]) == 0
        document = json.loads(baseline_path.read_text())
        document["findings"].append({
            "rule": "no-raw-io", "path": "gone.py",
            "snippet": "open('x')", "count": 2})
        baseline_path.write_text(json.dumps(document))
        assert main([str(target), "--baseline", str(baseline_path),
                     "--prune-baseline"]) == 0
        out = capsys.readouterr().out
        assert "pruned 2 stale baseline entries" in out
        pruned = json.loads(baseline_path.read_text())
        assert [e["rule"] for e in pruned["findings"]] == \
            ["effect-contract"]

    def test_prune_baseline_requires_baseline(self, tmp_path, capsys):
        assert main([str(tmp_path), "--prune-baseline"]) == 2
        assert "--prune-baseline requires" in capsys.readouterr().err

    def test_explain_prints_rationale(self, capsys):
        assert main(["--explain", "layering"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("layering:")
        assert ".prixarch.toml" in out

    def test_explain_unknown_rule_errors(self, capsys):
        assert main(["--explain", "ghost-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_effect_report_written(self, tmp_path, capsys):
        (tmp_path / "m.py").write_text(
            "def f(pager):\n    return pager.read(0)\n")
        report = tmp_path / "effects.json"
        assert main([str(tmp_path), "--effect-report", str(report)]) == 0
        document = json.loads(report.read_text())
        assert document["version"] == 1
        assert document["functions"]["m:f"]["effects"] == ["pager-io"]

    def test_json_report_seeds_arch_rule_zeros(self):
        document = json.loads(render_json(LintResult()))
        for rule in ("layering", "effect-contract",
                     "backend-conformance"):
            assert document["rule_counts"][rule] == 0

    def test_arch_rules_registered(self):
        registry = rules_by_name()
        for rule in ("layering", "effect-contract",
                     "backend-conformance"):
            assert rule in registry
        assert len(registry) == 17


class TestGatewayVocabularySync:
    def test_raw_io_seeds_cover_rules_io_vocabulary(self):
        from repro.analysis.arch.effects import (_IO_FILE_FUNCS,
                                                 _OS_FILE_FUNCS,
                                                 GATEWAY_FILES)
        from repro.analysis.rules_io import (IO_FILE_FUNCS, NoRawIoRule,
                                             OS_FILE_FUNCS)
        assert OS_FILE_FUNCS <= _OS_FILE_FUNCS
        assert IO_FILE_FUNCS <= _IO_FILE_FUNCS
        assert tuple(GATEWAY_FILES) == tuple(NoRawIoRule.GATEWAY_FILES)
