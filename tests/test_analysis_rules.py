"""Per-rule fixtures for prixlint: each rule has snippets that trigger
it and snippets that must pass clean."""

import textwrap

import pytest

from repro.analysis.core import SourceFile, check_source
from repro.analysis.rules_determinism import SeededRngRule
from repro.analysis.rules_hygiene import (NoBareExceptRule,
                                          NoMutableDefaultArgRule)
from repro.analysis.rules_io import NoRawIoRule, ResourceSafetyRule
from repro.analysis.rules_stats import StatsIntDisciplineRule

STORAGE_PATH = "src/repro/storage/bptree.py"


def findings(code, rule, path=STORAGE_PATH):
    source = SourceFile(path, textwrap.dedent(code))
    return check_source(source, [rule])


def rule_names(code, rule, path=STORAGE_PATH):
    return [finding.rule for finding in findings(code, rule, path)]


class TestNoRawIo:
    def test_builtin_open_flagged_in_storage(self):
        assert rule_names("handle = open('f.bin', 'rb')\n",
                          NoRawIoRule) == ["no-raw-io"]

    def test_os_file_call_flagged(self):
        code = "import os\nos.remove('f.bin')\n"
        assert rule_names(code, NoRawIoRule) == ["no-raw-io"]

    def test_os_alias_and_from_import_resolved(self):
        code = ("import os as _os\nfrom os import unlink as _rm\n"
                "_os.rename('a', 'b')\n_rm('c')\n")
        assert rule_names(code, NoRawIoRule) == ["no-raw-io"] * 2

    def test_io_open_flagged_but_bytesio_allowed(self):
        assert rule_names("import io\nio.open('f')\n",
                          NoRawIoRule) == ["no-raw-io"]
        assert rule_names("import io\nbuf = io.BytesIO()\n",
                          NoRawIoRule) == []

    def test_pager_method_named_open_allowed(self):
        assert rule_names("pager = Pager.open('f.idx')\npager.close()\n",
                          NoRawIoRule) == []

    def test_pager_module_itself_exempt(self):
        assert rule_names("handle = open('f.bin')\n", NoRawIoRule,
                          path="src/repro/storage/pager.py") == []

    def test_wal_module_itself_exempt(self):
        # wal.py is the second sanctioned raw-I/O gateway: the log file
        # sits beside the paged data file, below the Pager abstraction.
        assert rule_names("handle = open('f.idx.wal', 'r+b')\n",
                          NoRawIoRule,
                          path="src/repro/storage/wal.py") == []

    @pytest.mark.parametrize("path", [
        "src/repro/cli.py", "src/repro/bench/reporting.py",
        "benchmarks/bench_table2_datasets.py",
    ])
    def test_open_outside_paged_packages_allowed(self, path):
        assert rule_names("handle = open('f.xml')\n", NoRawIoRule,
                          path=path) == []

    @pytest.mark.parametrize("path", [
        "src/repro/prix/index.py", "src/repro/trie/trie.py",
    ])
    def test_prix_and_trie_in_scope(self, path):
        assert rule_names("open('f')\n", NoRawIoRule,
                          path=path) == ["no-raw-io"]


class TestSeededRng:
    def test_unseeded_random_flagged(self):
        code = "import random\nrng = random.Random()\n"
        assert rule_names(code, SeededRngRule) == ["seeded-rng"]

    def test_explicit_none_seed_flagged(self):
        code = "import random\nrng = random.Random(None)\n"
        assert rule_names(code, SeededRngRule) == ["seeded-rng"]

    def test_seeded_random_passes(self):
        code = "import random\nrng = random.Random(20040301)\n"
        assert rule_names(code, SeededRngRule) == []

    def test_module_level_function_flagged(self):
        code = "import random\nvalue = random.randint(1, 6)\n"
        assert rule_names(code, SeededRngRule) == ["seeded-rng"]

    def test_module_alias_resolved(self):
        code = "import random as rnd\nrnd.shuffle([1, 2])\n"
        assert rule_names(code, SeededRngRule) == ["seeded-rng"]

    def test_from_import_of_function_flagged(self):
        code = "from random import choice\n"
        assert rule_names(code, SeededRngRule) == ["seeded-rng"]

    def test_from_import_random_constructor_needs_seed(self):
        good = "from random import Random\nrng = Random(7)\n"
        bad = "from random import Random\nrng = Random()\n"
        assert rule_names(good, SeededRngRule) == []
        assert rule_names(bad, SeededRngRule) == ["seeded-rng"]

    def test_system_random_always_flagged(self):
        code = "import random\nrng = random.SystemRandom(1)\n"
        assert rule_names(code, SeededRngRule) == ["seeded-rng"]

    def test_instance_methods_pass(self):
        code = ("import random\nrng = random.Random(1)\n"
                "value = rng.random() + rng.randint(0, 3)\n")
        assert rule_names(code, SeededRngRule) == []


class TestStatsIntDiscipline:
    def test_float_literal_assignment_flagged(self):
        code = "stats.physical_reads = 1.0\n"
        assert rule_names(code, StatsIntDisciplineRule) == [
            "stats-int-discipline"]

    def test_true_division_flagged(self):
        code = "stats.logical_reads = total / 2\n"
        assert rule_names(code, StatsIntDisciplineRule) == [
            "stats-int-discipline"]

    def test_aug_assign_with_float_flagged(self):
        code = "stats.evictions += 0.5\n"
        assert rule_names(code, StatsIntDisciplineRule) == [
            "stats-int-discipline"]

    def test_floor_division_and_ints_pass(self):
        code = ("stats.physical_reads = total // 2\n"
                "stats.physical_writes += 1\n"
                "stats.allocations = before - after\n")
        assert rule_names(code, StatsIntDisciplineRule) == []

    def test_division_elsewhere_untouched(self):
        code = "ratio = stats.physical_reads / stats.logical_reads\n"
        assert rule_names(code, StatsIntDisciplineRule) == []

    def test_non_counter_attribute_untouched(self):
        code = "stats.elapsed_seconds = total / 1000\n"
        assert rule_names(code, StatsIntDisciplineRule) == []


class TestResourceSafety:
    def test_leaked_pager_flagged(self):
        code = """
        def build():
            pager = Pager.in_memory()
            pager.allocate()
        """
        assert rule_names(code, ResourceSafetyRule) == ["resource-safety"]

    def test_closed_handle_passes(self):
        code = """
        def build():
            pager = Pager.in_memory()
            try:
                pager.allocate()
            finally:
                pager.close()
        """
        assert rule_names(code, ResourceSafetyRule) == []

    def test_returned_handle_passes(self):
        code = """
        def build():
            pool = BufferPool(Pager.in_memory())
            return pool
        """
        assert rule_names(code, ResourceSafetyRule) == []

    def test_context_managed_handle_passes(self):
        code = """
        def build():
            pager = Pager.open("x.idx")
            with pager:
                pager.allocate()
        """
        assert rule_names(code, ResourceSafetyRule) == []

    def test_handle_passed_to_constructor_passes(self):
        code = """
        def build():
            pager = Pager.in_memory()
            return BufferPool(pager)
        """
        assert rule_names(code, ResourceSafetyRule) == []

    def test_handle_stored_on_self_passes(self):
        code = """
        class Env:
            def __init__(self):
                pool = BufferPool(Pager.in_memory())
                self._pool = pool
        """
        assert rule_names(code, ResourceSafetyRule) == []

    def test_leaked_index_in_test_function_flagged(self):
        code = """
        def test_roundtrip():
            index = PrixIndex.build(docs)
            assert index.doc_count == 2
        """
        assert rule_names(code, ResourceSafetyRule) == ["resource-safety"]

    def test_module_level_construction_untracked(self):
        # Module-scope singletons live for the process; only function
        # locals are leak-checked.
        code = "POOL = BufferPool(Pager.in_memory())\n"
        assert rule_names(code, ResourceSafetyRule) == []

    def test_leaked_wal_flagged(self):
        code = """
        def log_image(fileobj, image):
            wal = WriteAheadLog(fileobj, 4096)
            wal.append(1, image)
            wal.commit()
        """
        assert rule_names(code, ResourceSafetyRule) == ["resource-safety"]

    def test_context_managed_wal_passes(self):
        code = """
        def replay_tail(fileobj):
            with WriteAheadLog(fileobj, 4096) as wal:
                return list(wal.replay())
        """
        assert rule_names(code, ResourceSafetyRule) == []


class TestHygiene:
    def test_mutable_list_default_flagged(self):
        code = "def f(items=[]):\n    return items\n"
        assert rule_names(code, NoMutableDefaultArgRule) == [
            "no-mutable-default-arg"]

    def test_mutable_call_default_flagged(self):
        code = "def f(cache=dict()):\n    return cache\n"
        assert rule_names(code, NoMutableDefaultArgRule) == [
            "no-mutable-default-arg"]

    def test_kwonly_mutable_default_flagged(self):
        code = "def f(*, tags={'a'}):\n    return tags\n"
        assert rule_names(code, NoMutableDefaultArgRule) == [
            "no-mutable-default-arg"]

    def test_none_default_passes(self):
        code = ("def f(items=None, scale='small', n=3, key=()):\n"
                "    return items or []\n")
        assert rule_names(code, NoMutableDefaultArgRule) == []

    def test_bare_except_flagged(self):
        code = ("try:\n    risky()\nexcept:\n    pass\n")
        assert rule_names(code, NoBareExceptRule) == ["no-bare-except"]

    def test_typed_except_passes(self):
        code = ("try:\n    risky()\nexcept (OSError, ValueError):\n"
                "    pass\n")
        assert rule_names(code, NoBareExceptRule) == []
