"""Refinement phase tests, anchored to the paper's Examples 3-7."""

import pytest

from repro.prix.plan import build_plan
from repro.prix.refinement import DocView, refine
from repro.prufer.sequence import regular_sequence
from repro.query.twig import collapse
from repro.query.xpath import parse_xpath
from repro.xmlkit.tree import Document, element


def view_of(document, extended=False):
    seq = regular_sequence(document)
    nps = [0] + list(seq.nps) + [0]
    nps = [0] * (document.size + 1)
    labels = [None] * (document.size + 1)
    for child, parent in enumerate(seq.nps, start=1):
        nps[child] = parent
        labels[parent] = seq.lps[child - 1]
    for label, number in seq.leaves:
        labels[number] = label
    return DocView(document.doc_id, nps, labels, extended)


def plan_for(xpath, extended=False):
    return build_plan(collapse(parse_xpath(xpath)), extended=extended)


class TestDocView:
    def test_parents_and_labels(self, fig2_doc):
        view = view_of(fig2_doc)
        assert view.parent(7) == 15
        assert view.label(15) == "A"
        assert view.label(13) == "E"
        assert view.label(2) == "D"  # from the leaf list

    def test_children(self, fig2_doc):
        view = view_of(fig2_doc)
        assert view.children_of(13) == [10, 11, 12]
        assert view.children_of(15) == [1, 7, 9, 14]

    def test_subtree_iteration(self, fig2_doc):
        view = view_of(fig2_doc)
        found = dict(view.iter_subtree_with_depth(14))
        assert found == {14: 0, 13: 1, 10: 2, 11: 2, 12: 2}

    def test_subtree_depth_bound(self, fig2_doc):
        view = view_of(fig2_doc)
        found = dict(view.iter_subtree_with_depth(14, max_depth=1))
        assert found == {14: 0, 13: 1}

    def test_is_element(self, fig2_doc):
        view = view_of(fig2_doc)
        assert view.is_element(15)


class TestPaperExample3:
    """Connectedness: S_A is rejected, S_B passes (Theorem 2)."""

    def test_disconnected_subsequence_rejected(self, fig2_doc):
        # S_A = C B C E D at positions (2, 3, 8, 10, 13):
        # its postorder number sequence is 3 7 9 13 14 and the nodes form
        # a disconnected graph (Figure 2(c)).
        view = view_of(fig2_doc)
        plan = plan_for("//x/a/b/c/d/e")  # any 6-node plain path
        # Craft a plan-like check by reusing refine() directly is not
        # possible with a mismatched plan; instead verify via the
        # documented counterexample positions using a path query whose
        # LPS is C B C E D -- i.e. data labels along the subsequence.
        # Here we check the *connectedness property itself*: position 3
        # (postorder 7) is a last occurrence, but NPS[7]=15 is not the
        # next event node.
        positions = (2, 3, 8, 10, 13)
        images = [view.nps[p] for p in positions]
        assert images == [3, 7, 9, 13, 14]
        # last occurrence of 7 at index 1, next position is 8 != 7's
        # requirement (the deletion of node 7 itself).
        assert positions[2] != images[1]

    def test_connected_subsequence_passes(self, fig2_doc):
        # S_B positions (2,3,7,8,9,10,13,14): numbers 3 7 15 9 15 13 14 15
        view = view_of(fig2_doc)
        positions = (2, 3, 7, 8, 9, 10, 13, 14)
        images = [view.nps[p] for p in positions]
        assert images == [3, 7, 15, 9, 15, 13, 14, 15]


class TestPaperExample6EndToEnd:
    """The full refinement of the paper's Q on T."""

    def test_figure2_query_accepted(self, fig2_doc):
        from repro.datasets import figure2_query
        view = view_of(fig2_doc)
        plan = build_plan(collapse(figure2_query()), extended=False)
        assert plan.qlps == ("B", "A", "E", "D", "A")
        # Example 6: LPS(Q) matches at positions (3, 7, 11, 13, 14).
        embeddings = refine(plan, view, (3, 7, 11, 13, 14))
        assert len(embeddings) == 1
        embedding = embeddings[0]
        # Leaves: C -> node 3, F -> node 11; internals B->7, E->13,
        # D->14, root A->15.
        assert embedding[1] == 3    # query node 1 (C leaf)
        assert embedding[3] == 11   # query node 3 (F leaf)
        assert embedding[2] == 7
        assert embedding[6] == 15

    def test_wrong_positions_rejected(self, fig2_doc):
        from repro.datasets import figure2_query
        view = view_of(fig2_doc)
        plan = build_plan(collapse(figure2_query()), extended=False)
        # Positions whose labels match but structure does not.
        assert refine(plan, view, (3, 7, 10, 13, 14)) == []


class TestGapConsistency:
    def test_example4_sequences_gap_consistent(self, fig2_doc):
        """Example 4's S1/S2 pair satisfies Definition 3."""
        n_s1 = [7, 15, 13, 13, 15]
        n_s2 = [2, 7, 6, 6, 7]
        for i in range(4):
            data_gap = n_s1[i] - n_s1[i + 1]
            query_gap = n_s2[i] - n_s2[i + 1]
            assert (data_gap == 0) == (query_gap == 0)
            assert data_gap * query_gap >= 0
            assert abs(query_gap) <= abs(data_gap)


class TestWildcardRefinement:
    """Example 7: //..C..A with a wildcard chain."""

    def test_chain_walk_accepts(self, fig2_doc):
        view = view_of(fig2_doc)
        # Query C//A anchored anywhere: C's chain to A spans 2 edges for
        # data node 3 (3 -> 7 -> 15).
        plan = build_plan(collapse(parse_xpath("//A//C/D")),
                          extended=False)
        # positions: D's deletion event under C=3 is position 2,
        # C closes at its own deletion (position 3? node 3 at position 3
        # would be the C itself) -- use the engine-level test instead:
        from repro.prix.index import PrixIndex
        index = PrixIndex.build([fig2_doc])
        matches = index.query(parse_xpath("//A//C/D"), variant="rp")
        images = {m.canonical for m in matches}
        # C/D pairs under an A ancestor: (3,2), (6,4) under roots 15;
        # also under the inner A (15 is root; node 9 C has child F only).
        assert len(matches) >= 2

    def test_star_exact_depth(self, fig2_doc):
        from repro.baselines.naive import naive_matches
        from repro.prix.index import PrixIndex
        index = PrixIndex.build([fig2_doc])
        # A/*/*/D: D at depth exactly 3 below A -- the B/C/D chains land
        # on leaves (D,2) and (D,4); no D sits at depth 2, so //A/*/D is
        # empty.  Both agree with the oracle.
        empty = index.query(parse_xpath("//A/*/D"), variant="rp")
        assert empty == []
        assert not naive_matches(fig2_doc, parse_xpath("//A/*/D"))
        matches = index.query(parse_xpath("//A/*/*/D"), variant="rp")
        got = {m.canonical for m in matches}
        want = naive_matches(fig2_doc, parse_xpath("//A/*/*/D"))
        assert got == want
        leaf_images = sorted(m.images[1][1] for m in matches)
        assert leaf_images == [2, 4]

    def test_double_slash_leaf(self, fig2_doc):
        from repro.prix.index import PrixIndex
        index = PrixIndex.build([fig2_doc])
        matches = index.query(parse_xpath("//B//D"), variant="rp")
        leaf_images = sorted(m.images[1][1] for m in matches)
        assert leaf_images == [2, 4]
