"""Index persistence tests: save to a file, reopen, query identically."""

import pytest

from repro.baselines.naive import naive_matches
from repro.datasets import dblp
from repro.prix.index import IndexOptions, PrixIndex
from repro.query.xpath import parse_xpath

QUERIES = ['//inproceedings[./author="Jim Gray"][./year="1990"]',
           "//www[./editor]/url",
           "//inproceedings/author",
           '//title[text()="Semantic Analysis Patterns"]']


@pytest.fixture()
def saved_index_path(tmp_path):
    corpus = dblp(120)
    path = str(tmp_path / "prix.idx")
    index = PrixIndex.build(corpus.documents, IndexOptions(path=path))
    expected = {}
    for xpath in QUERIES:
        expected[xpath] = {(m.doc_id, m.canonical)
                           for m in index.query(xpath)}
    index.save()
    index.close()
    return path, expected


class TestSaveAndOpen:
    def test_reopened_index_answers_identically(self, saved_index_path):
        path, expected = saved_index_path
        reopened = PrixIndex.open(path)
        for xpath, want in expected.items():
            got = {(m.doc_id, m.canonical)
                   for m in reopened.query(xpath)}
            assert got == want, xpath
        reopened.close()

    def test_reopened_matches_oracle(self, saved_index_path, tmp_path):
        path, _ = saved_index_path
        reopened = PrixIndex.open(path)
        corpus = dblp(120)  # deterministic: same corpus
        pattern = parse_xpath("//article[./volume]/year")
        got = {(m.doc_id, m.canonical) for m in reopened.query(pattern)}
        want = {(d.doc_id, emb) for d in corpus.documents
                for emb in naive_matches(d, pattern)}
        assert got == want
        reopened.close()

    def test_metadata_survives(self, saved_index_path):
        path, _ = saved_index_path
        reopened = PrixIndex.open(path)
        assert reopened.doc_count == 120
        assert set(reopened.variants()) == {"rp", "ep"}
        stats = reopened.trie_stats("rp")
        assert stats.sequence_count == 120
        assert stats.node_count > 0
        assert reopened.maxgap_table("rp").get("inproceedings") > 0
        reopened.close()

    def test_strategies_work_after_reopen(self, saved_index_path):
        path, expected = saved_index_path
        reopened = PrixIndex.open(path)
        xpath = QUERIES[0]
        for strategy in ("trie", "document"):
            got = {(m.doc_id, m.canonical)
                   for m in reopened.query(xpath, strategy=strategy)}
            assert got == expected[xpath], strategy
        reopened.close()

    def test_cold_io_accounting_after_reopen(self, saved_index_path):
        path, _ = saved_index_path
        reopened = PrixIndex.open(path)
        _, stats = reopened.query_with_stats(QUERIES[0], cold=True)
        assert stats.physical_reads > 0
        reopened.close()

    def test_non_default_page_size_roundtrip(self, tmp_path):
        corpus = dblp(40)
        path = str(tmp_path / "small_pages.idx")
        index = PrixIndex.build(corpus.documents,
                                IndexOptions(path=path, page_size=1024))
        want = {(m.doc_id, m.canonical)
                for m in index.query("//www[./editor]/url")}
        index.save()
        index.close()
        reopened = PrixIndex.open(path)
        got = {(m.doc_id, m.canonical)
               for m in reopened.query("//www[./editor]/url")}
        assert got == want
        reopened.close()


class TestOpenValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            PrixIndex.open(str(tmp_path / "nope.idx"))

    def test_not_an_index(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(ValueError):
            PrixIndex.open(str(path))

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"ab")
        with pytest.raises(ValueError):
            PrixIndex.open(str(path))

    def test_save_twice_keeps_working(self, tmp_path):
        corpus = dblp(30)
        path = str(tmp_path / "twice.idx")
        index = PrixIndex.build(corpus.documents, IndexOptions(path=path))
        index.save()
        index.save()
        index.close()
        reopened = PrixIndex.open(path)
        assert reopened.doc_count == 30
        reopened.close()


class TestDurablePersistence:
    def test_durable_roundtrip_with_auto_detect(self, tmp_path):
        corpus = dblp(40)
        path = str(tmp_path / "durable.idx")
        with PrixIndex.build(corpus.documents,
                             IndexOptions(path=path,
                                          durable=True)) as index:
            want = {(m.doc_id, m.canonical)
                    for m in index.query(QUERIES[2])}
        # The sidecar .wal makes open() pick durable mode on its own.
        with PrixIndex.open(path) as reopened:
            assert reopened._pool.wal is not None
            got = {(m.doc_id, m.canonical)
                   for m in reopened.query(QUERIES[2])}
        assert got == want

    def test_checkpoint_truncates_and_preserves(self, tmp_path):
        corpus = dblp(40)
        path = str(tmp_path / "ckpt.idx")
        with PrixIndex.build(corpus.documents,
                             IndexOptions(path=path,
                                          durable=True)) as index:
            want = {(m.doc_id, m.canonical)
                    for m in index.query(QUERIES[2])}
            before = index._pool.wal.size_bytes
            index.checkpoint()
            after = index._pool.wal.size_bytes
        assert after < before
        with PrixIndex.open(path, durable=True) as reopened:
            got = {(m.doc_id, m.canonical)
                   for m in reopened.query(QUERIES[2])}
        assert got == want

    def test_durable_insert_then_save_survives_reopen(self, tmp_path):
        from repro.xmlkit.parser import parse_document
        path = str(tmp_path / "grow.idx")
        base = [parse_document("<bib><article><author>codd</author>"
                               "</article></bib>", 1),
                parse_document("<bib><book><author>date</author>"
                               "</book></bib>", 2)]
        extra = parse_document("<bib><article><author>gray</author>"
                               "</article></bib>", 3)
        with PrixIndex.build(base,
                             IndexOptions(path=path, durable=True,
                                          labeler="dynamic")) as index:
            index.insert_document(extra)
            index.save()
        with PrixIndex.open(path) as reopened:
            assert reopened.doc_count == 3
            got = {m.doc_id for m in reopened.query("//article/author")}
            assert got == {1, 3}
