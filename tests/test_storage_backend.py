"""StorageBackend seam tests: substrate parity, dispatch, read-only mmap.

The PR 7 acceptance bar: the paper's "Disk IO pages" accounting and the
query results must be byte-identical whether an index runs over the
production file pager or the in-memory arena, and the mmap serving
backend must answer identically while refusing every mutation with the
typed :class:`ReadOnlyBackendError`.
"""

import pytest

from repro.datasets import dblp
from repro.prix.index import IndexOptions, PrixIndex
from repro.storage.backend import (FilePagerBackend, InMemoryArenaBackend,
                                   MmapBackend, create_backend,
                                   open_backend)
from repro.storage.errors import ReadOnlyBackendError
from repro.storage.mmapio import MmapPager
from repro.xmlkit.tree import Document

QUERIES = ['//inproceedings[./author="Jim Gray"][./year="1990"]',
           "//www[./editor]/url",
           "//inproceedings/author",
           "//article[./volume]/year"]

#: Small pool so the workload actually evicts and re-reads pages.
TIGHT_POOL = 16

#: Every IOStats counter, compared wholesale across substrates.
COUNTERS = ("physical_reads", "physical_writes", "logical_reads",
            "evictions", "allocations", "wal_appends", "wal_fsyncs",
            "wal_bytes", "guard_verifications", "guard_repairs",
            "guard_quarantines")


def _build(backend_kind):
    corpus = dblp(120)
    options = IndexOptions(backend=backend_kind, pool_pages=TIGHT_POOL)
    return PrixIndex.build(corpus.documents, options)


def _counters(index):
    stats = index.io_stats
    return {name: stats.read(name) for name in COUNTERS}


def _run_queries(index):
    """(result sets, per-query physical read deltas) for the workload."""
    results, reads = [], []
    for xpath in QUERIES:
        matches, stats = index.query_with_stats(xpath, cold=True)
        results.append({(m.doc_id, m.canonical) for m in matches})
        reads.append(stats.physical_reads)
    return results, reads


class TestSubstrateParity:
    def test_disk_io_and_results_identical_file_vs_arena(self):
        """The acceptance bar: byte-identical accounting across substrates."""
        file_index = _build("file")
        arena_index = _build("arena")
        try:
            file_results, file_reads = _run_queries(file_index)
            arena_results, arena_reads = _run_queries(arena_index)
            assert file_results == arena_results
            assert file_reads == arena_reads
            assert _counters(file_index) == _counters(arena_index)
        finally:
            file_index.close()
            arena_index.close()

    def test_build_stats_identical(self):
        file_index = _build("file")
        arena_index = _build("arena")
        try:
            file_stats = _counters(file_index)
            arena_stats = _counters(arena_index)
            assert file_stats == arena_stats
            assert file_stats["allocations"] > 0
        finally:
            file_index.close()
            arena_index.close()


class TestBackendDispatch:
    def test_create_backend_kinds(self):
        file_backend = create_backend(IndexOptions(backend="file"))
        arena_backend = create_backend(IndexOptions(backend="arena"))
        try:
            assert isinstance(file_backend, FilePagerBackend)
            assert file_backend.kind == "file"
            assert isinstance(arena_backend, InMemoryArenaBackend)
            assert arena_backend.kind == "arena"
        finally:
            file_backend.close()
            arena_backend.close()

    def test_create_backend_rejects_mmap_for_builds(self):
        with pytest.raises(ReadOnlyBackendError):
            create_backend(IndexOptions(backend="mmap"))

    def test_create_backend_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            create_backend(IndexOptions(backend="carrier-pigeon"))

    def test_open_backend_mmap_kind(self, tmp_path):
        path = str(tmp_path / "pages.db")
        backend = FilePagerBackend.open(path, page_size=64)
        pid, _ = backend.new_page()
        backend.put(pid, b"\x42" * 64)
        backend.close()
        served = open_backend(path, 64, kind="mmap")
        try:
            assert isinstance(served, MmapBackend)
            assert served.kind == "mmap"
            assert bytes(served.get(pid)) == b"\x42" * 64
        finally:
            served.close()


class TestMmapReadOnly:
    @pytest.fixture()
    def served(self, tmp_path):
        path = str(tmp_path / "pages.db")
        writer = FilePagerBackend.open(path, page_size=64)
        for fill in (b"\x01", b"\x02", b"\x03"):
            pid, _ = writer.new_page()
            writer.put(pid, fill * 64)
        writer.close()
        backend = MmapBackend(path, page_size=64, pool_pages=2)
        yield backend
        backend.close()

    def test_reads_serve_mapped_bytes(self, served):
        assert bytes(served.get(0)) == b"\x01" * 64
        assert bytes(served.get(2)) == b"\x03" * 64
        assert served.num_pages == 3

    def test_reads_are_counted(self, served):
        served.flush_and_clear()
        served.get(0)
        served.get(0)
        assert served.stats.physical_reads == 1
        assert served.stats.logical_reads == 2

    def test_every_mutator_raises_typed_error(self, served):
        with pytest.raises(ReadOnlyBackendError):
            served.put(0, b"\x00" * 64)
        with pytest.raises(ReadOnlyBackendError):
            served.new_page()
        with pytest.raises(ReadOnlyBackendError):
            served.mark_dirty(0)
        with pytest.raises(ReadOnlyBackendError):
            served.attach_wal(object())

    def test_rejected_mutation_leaves_page_intact(self, served):
        with pytest.raises(ReadOnlyBackendError):
            served.put(1, b"\xff" * 64)
        assert bytes(served.get(1)) == b"\x02" * 64

    def test_pager_rejects_misaligned_file(self, tmp_path):
        path = tmp_path / "ragged.db"
        path.write_bytes(b"\x00" * 100)
        with pytest.raises(ValueError):
            MmapPager(str(path), page_size=64)

    def test_empty_file_has_no_pages(self, tmp_path):
        path = tmp_path / "empty.db"
        path.write_bytes(b"")
        pager = MmapPager(str(path), page_size=64)
        assert pager.num_pages == 0
        pager.close()


class TestMmapServing:
    def test_mmap_index_answers_identically(self, tmp_path):
        corpus = dblp(120)
        path = str(tmp_path / "prix.idx")
        built = PrixIndex.build(corpus.documents, IndexOptions(path=path))
        want = {}
        for xpath in QUERIES:
            want[xpath] = {(m.doc_id, m.canonical)
                           for m in built.query(xpath)}
        built.save()
        built.close()
        served = PrixIndex.open(path, backend="mmap")
        try:
            assert isinstance(served._pool, MmapBackend)
            for xpath, expected in want.items():
                got = {(m.doc_id, m.canonical)
                       for m in served.query(xpath)}
                assert got == expected, xpath
        finally:
            served.close()

    def test_mmap_index_refuses_inserts(self, tmp_path, fig2_doc):
        corpus = dblp(40)
        path = str(tmp_path / "prix.idx")
        built = PrixIndex.build(corpus.documents, IndexOptions(path=path))
        built.save()
        built.close()
        served = PrixIndex.open(path, backend="mmap")
        fresh = Document(fig2_doc.root, doc_id=10_000)
        try:
            with pytest.raises(ReadOnlyBackendError):
                served.insert_document(fresh)
        finally:
            served.close()


class TestArenaServing:
    def test_open_backend_arena_kind_is_a_detached_snapshot(self, tmp_path):
        path = tmp_path / "pages.db"
        writer = FilePagerBackend.open(str(path), page_size=64)
        pid, _ = writer.new_page()
        writer.put(pid, b"\x42" * 64)
        writer.close()
        served = open_backend(str(path), 64, kind="arena")
        try:
            assert isinstance(served, InMemoryArenaBackend)
            assert served.kind == "arena"
            # The snapshot is detached: the source file can vanish and
            # every page still answers from process memory.
            path.unlink()
            assert bytes(served.get(pid)) == b"\x42" * 64
        finally:
            served.close()

    def test_open_backend_arena_refuses_durable(self, tmp_path):
        path = str(tmp_path / "pages.db")
        FilePagerBackend.open(path, page_size=64).close()
        with pytest.raises(ReadOnlyBackendError) as caught:
            open_backend(path, 64, kind="arena", durable=True)
        assert "cannot attach a write-ahead log" in str(caught.value)

    def test_open_backend_rejects_unknown_kind(self, tmp_path):
        path = str(tmp_path / "pages.db")
        FilePagerBackend.open(path, page_size=64).close()
        with pytest.raises(ValueError,
                           match="expected 'file', 'arena' or 'mmap'"):
            open_backend(path, 64, kind="carrier-pigeon")

    def test_arena_index_answers_identically(self, tmp_path):
        corpus = dblp(120)
        path = str(tmp_path / "prix.idx")
        built = PrixIndex.build(corpus.documents, IndexOptions(path=path))
        want = {}
        for xpath in QUERIES:
            want[xpath] = {(m.doc_id, m.canonical)
                           for m in built.query(xpath)}
        built.save()
        built.close()
        served = PrixIndex.open(path, backend="arena")
        try:
            assert isinstance(served._pool, InMemoryArenaBackend)
            for xpath, expected in want.items():
                got = {(m.doc_id, m.canonical)
                       for m in served.query(xpath)}
                assert got == expected, xpath
        finally:
            served.close()
