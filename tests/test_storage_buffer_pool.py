"""Buffer pool tests: caching, eviction, dirty write-back, accounting."""

import pytest

from repro.storage.buffer_pool import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.errors import BufferPoolExhaustedError, PageSizeError
from repro.storage.pager import Pager


def make_pool(capacity=4, page_size=64):
    pager = Pager.in_memory(page_size=page_size)
    return BufferPool(pager, capacity=capacity), pager


class TestCaching:
    def test_hit_avoids_physical_read(self):
        pool, pager = make_pool()
        pid, _ = pool.new_page()
        pool.flush_and_clear()
        pool.get(pid)
        pool.get(pid)
        assert pager.stats.physical_reads == 1
        assert pager.stats.logical_reads == 2

    def test_capacity_validated(self):
        pager = Pager.in_memory()
        with pytest.raises(ValueError):
            BufferPool(pager, capacity=0)

    def test_default_capacity_matches_paper(self):
        assert DEFAULT_POOL_PAGES == 2000


class TestEviction:
    def test_lru_eviction_order(self):
        pool, pager = make_pool(capacity=2)
        pids = [pool.new_page()[0] for _ in range(2)]
        pool.flush_and_clear()
        pool.get(pids[0])
        pool.get(pids[1])
        pool.get(pids[0])           # 0 is now most recent
        extra = pager.allocate()
        pool.get(extra)             # evicts pids[1]
        reads = pager.stats.physical_reads
        pool.get(pids[0])           # still cached
        assert pager.stats.physical_reads == reads
        pool.get(pids[1])           # was evicted
        assert pager.stats.physical_reads == reads + 1

    def test_dirty_page_written_on_eviction(self):
        pool, pager = make_pool(capacity=1, page_size=32)
        pid, frame = pool.new_page()
        frame[:4] = b"\xaa\xbb\xcc\xdd"
        pool.mark_dirty(pid)
        other = pager.allocate()
        pool.get(other)  # forces eviction of pid
        assert bytes(pager.read(pid))[:4] == b"\xaa\xbb\xcc\xdd"

    def test_evictions_counted(self):
        pool, pager = make_pool(capacity=1)
        pool.new_page()
        pool.new_page()
        assert pager.stats.evictions == 1


class TestDirtyTracking:
    def test_flush_writes_dirty_pages(self):
        pool, pager = make_pool(page_size=32)
        pid, frame = pool.new_page()
        frame[0] = 9
        pool.mark_dirty(pid)
        pool.flush()
        assert pager.read(pid)[0] == 9

    def test_put_replaces_contents(self):
        pool, pager = make_pool(page_size=8)
        pid, _ = pool.new_page()
        pool.put(pid, b"\x05" * 8)
        pool.flush()
        assert bytes(pager.read(pid)) == b"\x05" * 8

    def test_mark_dirty_requires_residency(self):
        pool, pager = make_pool(capacity=1)
        pid, _ = pool.new_page()
        pool.new_page()  # evicts pid
        with pytest.raises(KeyError):
            pool.mark_dirty(pid)

    def test_mark_dirty_after_cold_clear_raises(self):
        pool, _ = make_pool()
        pid, _ = pool.new_page()
        pool.flush_and_clear()
        with pytest.raises(KeyError):
            pool.mark_dirty(pid)


class TestPutSizeValidation:
    """A short ``put`` must never shrink the frame that gets flushed."""

    def test_short_put_rejected(self):
        pool, _ = make_pool(page_size=8)
        pid, _ = pool.new_page()
        with pytest.raises(PageSizeError):
            pool.put(pid, b"\x05" * 3)

    def test_oversized_put_rejected(self):
        pool, _ = make_pool(page_size=8)
        pid, _ = pool.new_page()
        with pytest.raises(PageSizeError):
            pool.put(pid, b"\x05" * 9)

    def test_rejected_put_leaves_frame_intact(self):
        pool, pager = make_pool(page_size=8)
        pid, _ = pool.new_page()
        pool.put(pid, b"\xaa" * 8)
        with pytest.raises(PageSizeError):
            pool.put(pid, b"\xbb" * 2)
        pool.flush()
        assert bytes(pager.read(pid)) == b"\xaa" * 8

    def test_short_put_on_non_resident_page_rejected(self):
        pool, pager = make_pool(page_size=8)
        pid, _ = pool.new_page()
        pool.flush_and_clear()
        with pytest.raises(PageSizeError):
            pool.put(pid, b"")


class TestDecodedCache:
    def test_decoder_called_once_while_resident(self):
        pool, _ = make_pool()
        pid, _ = pool.new_page()
        calls = []

        def decoder(page_id, frame):
            calls.append(page_id)
            return object()

        first = pool.get_decoded(pid, decoder)
        second = pool.get_decoded(pid, decoder)
        assert first is second
        assert calls == [pid]

    def test_decoded_dropped_on_put(self):
        pool, _ = make_pool(page_size=8)
        pid, _ = pool.new_page()
        pool.get_decoded(pid, lambda p, f: ("v", bytes(f)))
        pool.put(pid, b"\x01" * 8)
        value = pool.get_decoded(pid, lambda p, f: ("v2", bytes(f)))
        assert value == ("v2", b"\x01" * 8)

    def test_decoded_dropped_on_eviction(self):
        pool, pager = make_pool(capacity=1)
        pid, _ = pool.new_page()
        pool.get_decoded(pid, lambda p, f: "first")
        pool.new_page()  # evicts pid
        assert pool.get_decoded(pid, lambda p, f: "second") == "second"

    def test_cold_clear_forces_physical_reread(self):
        pool, pager = make_pool()
        pid, _ = pool.new_page()
        pool.get_decoded(pid, lambda p, f: "x")
        pool.flush_and_clear()
        before = pager.stats.physical_reads
        pool.get_decoded(pid, lambda p, f: "x")
        assert pager.stats.physical_reads == before + 1

    def test_dirty_eviction_writes_back_and_drops_decoded(self):
        # Evicting a *dirty* page must both persist the mutation and
        # invalidate the memoized decoded object, or a later get_decoded
        # would resurrect the pre-eviction view of the page.
        pool, pager = make_pool(capacity=1, page_size=8)
        pid, frame = pool.new_page()
        frame[:] = b"\x07" * 8
        pool.mark_dirty(pid)
        pool.get_decoded(pid, lambda p, f: ("old", bytes(f)))
        pool.new_page()  # evicts the dirty page
        assert bytes(pager.read(pid)) == b"\x07" * 8
        value = pool.get_decoded(pid, lambda p, f: ("new", bytes(f)))
        assert value == ("new", b"\x07" * 8)


class TestColdCache:
    def test_flush_and_clear_next_get_is_physical(self):
        pool, pager = make_pool()
        pid, _ = pool.new_page()
        pool.get(pid)  # resident, logical only
        before = pager.stats.physical_reads
        pool.flush_and_clear()
        assert pool.cached_pages == 0
        pool.get(pid)
        assert pager.stats.physical_reads == before + 1


class TestStatsDelta:
    def test_snapshot_delta(self):
        pool, pager = make_pool()
        snap = pager.stats.snapshot()
        pid, _ = pool.new_page()
        pool.flush_and_clear()
        pool.get(pid)
        delta = pager.stats.delta(snap)
        assert delta.physical_reads == 1
        assert delta.allocations == 1

    def test_hit_ratio(self):
        pool, pager = make_pool()
        pid, _ = pool.new_page()
        pool.flush_and_clear()
        pager.stats.reset()
        pool.get(pid)
        pool.get(pid)
        assert pager.stats.hit_ratio == 0.5


class TestHitRatio:
    def test_no_traffic_returns_none(self):
        pool, pager = make_pool()
        assert pager.stats.hit_ratio is None

    def test_direct_pager_traffic_clamps_to_zero(self):
        # Reads issued straight through the pager (no logical read) used
        # to drive the ratio negative.
        pool, pager = make_pool()
        pid, _ = pool.new_page()
        pool.flush_and_clear()
        pager.stats.reset()
        pool.get(pid)          # 1 logical, 1 physical
        pager.read(pid)        # direct: physical only
        pager.read(pid)
        assert pager.stats.hit_ratio == 0.0

    def test_all_hits_is_one(self):
        pool, pager = make_pool()
        pid, _ = pool.new_page()
        pool.flush()
        pager.stats.reset()
        pool.get(pid)  # still resident: logical hit, no physical read
        assert pager.stats.hit_ratio == 1.0

    def test_never_exceeds_one(self):
        from repro.storage.stats import IOStats
        stats = IOStats(logical_reads=4, physical_reads=0)
        assert stats.hit_ratio == 1.0


class TestBackendParity:
    """Buffer-pool edge behaviour through the StorageBackend seam.

    Parametrized over the file and arena substrates by ``make_backend``;
    exact counter assertions force identical IOStats movement on both.
    """

    def test_lru_eviction_order(self, make_backend):
        backend = make_backend(page_size=64, pool_pages=2)
        pids = [backend.new_page()[0] for _ in range(2)]
        third, _ = backend.new_page()      # evicts pids[0] (LRU)
        backend.get(pids[1])               # still resident
        backend.get(third)                 # still resident
        reads = backend.stats.physical_reads
        backend.get(pids[0])               # was evicted: physical
        assert backend.stats.physical_reads == reads + 1

    def test_dirty_page_survives_eviction(self, make_backend):
        backend = make_backend(page_size=32, pool_pages=1)
        pid, frame = backend.new_page()
        frame[:4] = b"\xaa\xbb\xcc\xdd"
        backend.mark_dirty(pid)
        backend.new_page()                 # forces write-back of pid
        assert bytes(backend.get(pid))[:4] == b"\xaa\xbb\xcc\xdd"

    def test_evictions_counted(self, make_backend):
        backend = make_backend(page_size=64, pool_pages=1)
        backend.new_page()
        backend.new_page()
        assert backend.stats.evictions == 1

    def test_pinned_page_not_evicted(self, make_backend):
        backend = make_backend(page_size=64, pool_pages=1)
        pid, _ = backend.new_page()
        backend.pin(pid)
        try:
            with pytest.raises(BufferPoolExhaustedError):
                backend.new_page()
        finally:
            backend.unpin(pid)

    def test_pinned_context_releases(self, make_backend):
        backend = make_backend(page_size=64, pool_pages=1)
        pid, _ = backend.new_page()
        with backend.pinned(pid):
            assert backend.pin_count(pid) == 1
        assert backend.pin_count(pid) == 0
        backend.new_page()                 # eviction possible again

    def test_mark_dirty_requires_residency(self, make_backend):
        backend = make_backend(page_size=64, pool_pages=1)
        pid, _ = backend.new_page()
        backend.flush_and_clear()
        with pytest.raises(KeyError):
            backend.mark_dirty(pid)

    def test_short_put_rejected_and_frame_intact(self, make_backend):
        backend = make_backend(page_size=64)
        pid, _ = backend.new_page()
        backend.put(pid, b"\x05" * 64)
        with pytest.raises(PageSizeError):
            backend.put(pid, b"short")
        assert bytes(backend.get(pid)) == b"\x05" * 64

    def test_flush_and_clear_forces_physical_reread(self, make_backend):
        backend = make_backend(page_size=64)
        pid, _ = backend.new_page()
        backend.flush_and_clear()
        before = backend.stats.physical_reads
        backend.get(pid)
        assert backend.stats.physical_reads == before + 1
