"""Recovery tests: committed tails replay, uncommitted tails vanish.

Each test builds a log by hand, "crashes" by discarding the live
objects, and checks what :func:`recover` makes of the bytes left behind
-- including running recovery twice, because a crash *during* recovery
is cured by running it again (idempotence).
"""

import io

from repro.storage.recovery import recover, recover_path, scan_committed
from repro.storage.wal import SYNC_NEVER, WriteAheadLog

PAGE = 64


def image(fill):
    return bytes([fill]) * PAGE


def fresh_log(records):
    """A log file holding ``records``: 'p' logs pages, 'c' commits."""
    buf = io.BytesIO()
    wal = WriteAheadLog(buf, PAGE, sync_policy=SYNC_NEVER)
    for op, args in records:
        if op == "p":
            wal.log_page(args[0], image(args[1]))
        elif op == "c":
            wal.commit()
    return wal


class TestScan:
    def test_commit_promotes_pending(self):
        wal = fresh_log([("p", (0, 1)), ("p", (1, 2)), ("c", ())])
        committed, result = scan_committed(wal)
        assert set(committed) == {0, 1}
        assert result.commits_applied == 1
        assert result.pages_discarded == 0

    def test_uncommitted_tail_discarded(self):
        wal = fresh_log([("p", (0, 1)), ("c", ()), ("p", (1, 2))])
        committed, result = scan_committed(wal)
        assert set(committed) == {0}
        assert result.pages_discarded == 1

    def test_later_commit_wins_per_page(self):
        wal = fresh_log([("p", (0, 1)), ("c", ()),
                         ("p", (0, 9)), ("c", ())])
        committed, _ = scan_committed(wal)
        assert committed[0] == image(9)

    def test_empty_log_is_clean(self):
        wal = fresh_log([])
        committed, result = scan_committed(wal)
        assert committed == {}
        assert result.clean


class TestRecover:
    def test_replays_into_empty_file(self):
        wal = fresh_log([("p", (0, 5)), ("p", (1, 6)), ("c", ())])
        data = io.BytesIO()
        result = recover(data, wal)
        assert result.pages_applied == 2
        assert data.getvalue() == image(5) + image(6)

    def test_gap_pages_zero_filled(self):
        wal = fresh_log([("p", (2, 7)), ("c", ())])
        data = io.BytesIO()
        recover(data, wal)
        assert data.getvalue() == image(0) + image(0) + image(7)

    def test_torn_data_tail_truncated(self):
        wal = fresh_log([("p", (0, 3)), ("c", ())])
        data = io.BytesIO(image(1) + b"torn-half-page")
        result = recover(data, wal)
        assert result.truncated_bytes == len(b"torn-half-page")
        assert data.getvalue() == image(3)

    def test_uncommitted_images_never_reach_data(self):
        wal = fresh_log([("p", (0, 3)), ("c", ()), ("p", (0, 9))])
        data = io.BytesIO()
        recover(data, wal)
        assert data.getvalue() == image(3)

    def test_recovery_is_idempotent(self):
        wal = fresh_log([("p", (0, 4)), ("p", (1, 5)), ("c", ())])
        data = io.BytesIO()
        recover(data, wal)
        once = data.getvalue()
        recover(data, wal)  # crash-during-recovery -> run it again
        assert data.getvalue() == once

    def test_clean_log_touches_nothing(self):
        wal = fresh_log([])
        payload = image(8) + image(9)
        data = io.BytesIO(payload)
        result = recover(data, wal)
        assert result.clean
        assert data.getvalue() == payload


class TestRecoverPath:
    def test_missing_wal_is_clean(self, tmp_path):
        result = recover_path(str(tmp_path / "idx"),
                              str(tmp_path / "idx.wal"))
        assert result.clean

    def test_replays_from_files(self, tmp_path):
        wal_path = str(tmp_path / "idx.wal")
        data_path = str(tmp_path / "idx")
        with WriteAheadLog.open(wal_path, PAGE) as wal:
            wal.log_page(0, image(2))
            wal.commit(page_count=1)
        result = recover_path(data_path, wal_path)
        assert result.pages_applied == 1
        with open(data_path, "rb") as handle:
            assert handle.read() == image(2)

    def test_garbage_header_means_nothing_to_redo(self, tmp_path):
        # A crash during checkpoint truncation can leave a header torn;
        # the data file was fsynced before truncation, so recovery must
        # leave it alone.
        wal_path = tmp_path / "idx.wal"
        wal_path.write_bytes(b"\xde\xad")
        data_path = tmp_path / "idx"
        data_path.write_bytes(image(1))
        result = recover_path(str(data_path), str(wal_path))
        assert result.clean
        assert data_path.read_bytes() == image(1)
