"""MaxGap metric tests (Section 5.4)."""

import random

from helpers import make_random_tree
from repro.prufer.maxgap import MaxGapTable, compute_maxgap
from repro.prufer.sequence import regular_sequence
from repro.prix.index import _merge_maxgap
from repro.xmlkit.tree import Document, element


def paper_figure5_trees():
    """Trees P and Q of Figure 5 (reconstructed to match the text).

    In P the children of the A-root span postorder 8..14 (gap 6); in Q
    they span 1..3 (gap 2); MaxGap(A, {P, Q}) = 6.  In P the children of
    the C-node span 10..13 (gap 3).
    """
    # Tree P: root A whose first/last children have postorder 8 and 14,
    # and a C node whose children span 10..13.
    p_root = element("A")
    left = element("B")          # subtree of 7 nodes -> child B is #8
    node = left
    for _ in range(7):
        node = node.append(element("X"))
    p_root.append(left)          # B subtree: postorders 1..8
    c_node = element("C")        # children at 9+1=10 .. 13
    for _ in range(4):
        c_node.append(element("Y"))
    p_root.append(element("Z"))  # postorder 9
    p_root.append(c_node)        # Y's at 10..13, C at 14? -- adjust below
    p_doc = Document(p_root)

    q_root = element("A")
    q_root.append(element("B"))
    q_root.append(element("C"))
    q_root.append(element("D"))
    q_doc = Document(q_root)
    return p_doc, q_doc


class TestMaxGapComputation:
    def test_single_children_give_zero(self):
        root = element("a")
        b = root.append(element("b"))
        b.append(element("c"))
        table = compute_maxgap([Document(root)])
        assert table.get("a") == 0
        assert table.get("b") == 0

    def test_sibling_span(self):
        root = element("a")
        b = element("b")
        b.append(element("x"))
        b.append(element("y"))
        root.append(b)
        root.append(element("z"))
        doc = Document(root)
        # b's children are postorder 1 and 2 -> span 1.
        # a's children are postorder 3 (b) and 4 (z) -> span 1.
        table = compute_maxgap([doc])
        assert table.get("b") == 1
        assert table.get("a") == 1

    def test_max_over_collection(self):
        doc_p, doc_q = paper_figure5_trees()
        table = compute_maxgap([doc_p, doc_q])
        a_span_p = (doc_p.root.children[-1].postorder
                    - doc_p.root.children[0].postorder)
        a_span_q = (doc_q.root.children[-1].postorder
                    - doc_q.root.children[0].postorder)
        assert table.get("A") == max(a_span_p, a_span_q)

    def test_unknown_label_defaults_to_zero(self):
        assert MaxGapTable().get("nope") == 0

    def test_merge_span_keeps_maximum(self):
        table = MaxGapTable()
        table.merge_span("x", 3)
        table.merge_span("x", 1)
        assert table.get("x") == 3


class TestSequenceDerivedMaxGap:
    def test_matches_tree_derived(self):
        """_merge_maxgap (from NPS alone) agrees with compute_maxgap
        (from the tree) -- Lemma 1 makes them equivalent."""
        rng = random.Random(55)
        for _ in range(30):
            doc = Document(make_random_tree(rng, max_nodes=30))
            from_tree = compute_maxgap([doc])
            from_seq = MaxGapTable()
            _merge_maxgap(from_seq, regular_sequence(doc))
            assert from_tree.as_dict() == from_seq.as_dict()
