"""Tests for query budgets and graceful degradation.

The contract under test (``docs/ROBUSTNESS.md``): a budget that runs
out during *refinement* degrades to an ``approximate=True`` superset of
the exact answer (justified by Theorems 1-2 -- the filter has no false
dismissals), while a budget that runs out during *filtering* is a hard
typed error (an incomplete filter pass could silently drop answers).
An absent or unlimited budget must not change results at all.
"""

import pytest

from repro.prix.budget import (PHASE_FILTER, PHASE_REFINEMENT,
                               BudgetExceededError, QueryBudget)
from repro.prix.index import IndexOptions, PrixIndex
from repro.prix.matcher import QueryResult, TwigMatch
from repro.storage.stats import IOStats
from repro.xmlkit.parser import parse_document

TEXTS = [
    '<bib><book><author>knuth</author><title>taocp</title></book>'
    '<book><author>gray</author><title>txn</title></book></bib>',
    '<bib><book><author>date</author><title>intro</title></book></bib>',
    '<bib><book><author>gray</author><title>bench</title></book>'
    '<article><author>codd</author></article></bib>',
    '<bib><article><author>knuth</author></article></bib>',
]
QUERY = '//book[./author]/title'


@pytest.fixture(scope="module")
def index():
    docs = [parse_document(text, doc_id)
            for doc_id, text in enumerate(TEXTS, start=1)]
    with PrixIndex.build(docs, IndexOptions(page_size=256,
                                            pool_pages=32)) as built:
        yield built


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestBudgetDataclass:
    def test_default_is_unlimited(self):
        assert QueryBudget().unlimited

    def test_any_cap_is_limited(self):
        assert not QueryBudget(max_candidates=5).unlimited
        assert not QueryBudget(max_range_queries=5).unlimited
        assert not QueryBudget(max_physical_reads=5).unlimited
        assert not QueryBudget(deadline_seconds=0.5).unlimited

    def test_fork_copies_limits_into_a_fresh_budget(self):
        template = QueryBudget(max_range_queries=1, max_physical_reads=2,
                               max_candidates=3, deadline_seconds=4.0)
        fork = template.fork()
        assert fork == template
        assert fork is not template
        assert QueryBudget().fork().unlimited

    def test_forked_meters_do_not_share_state(self):
        # The serving-tier property: one template budget, one meter per
        # request -- spending in one fork's meter must never count
        # against another's caps.
        template = QueryBudget(max_range_queries=2)
        first = template.fork().meter()
        second = template.fork().meter()
        first.charge_range_query()
        first.charge_range_query()
        second.charge_range_query()
        second.charge_range_query()   # its own allowance, untouched
        with pytest.raises(BudgetExceededError):
            first.charge_range_query()

    def test_forked_meter_deadline_starts_at_its_own_meter_call(self):
        clock = FakeClock()
        template = QueryBudget(deadline_seconds=1.0)
        clock.now = 10.0   # time passed before this request arrived
        meter = template.fork().meter(clock=clock)
        clock.now = 10.5
        meter.checkpoint()  # half the allowance left, not long expired
        clock.now = 11.5
        with pytest.raises(BudgetExceededError):
            meter.checkpoint()


class TestBudgetMeter:
    def test_range_queries_exhaust_in_filter_phase(self):
        meter = QueryBudget(max_range_queries=2).meter()
        meter.charge_range_query()
        meter.charge_range_query()
        with pytest.raises(BudgetExceededError) as excinfo:
            meter.charge_range_query()
        reason = excinfo.value.reason
        assert reason.phase == PHASE_FILTER
        assert reason.limit == "range_queries"
        assert (reason.spent, reason.budget) == (3, 2)

    def test_candidates_exhaust_in_refinement_phase(self):
        meter = QueryBudget(max_candidates=1).meter()
        meter.enter_refinement()
        meter.charge_candidate()
        with pytest.raises(BudgetExceededError) as excinfo:
            meter.charge_candidate()
        assert excinfo.value.reason.phase == PHASE_REFINEMENT
        assert excinfo.value.reason.limit == "candidates"

    def test_physical_reads_measured_as_delta(self):
        stats = IOStats()
        stats.physical_reads = 100
        meter = QueryBudget(max_physical_reads=5).meter(io_stats=stats)
        stats.physical_reads = 105
        meter.checkpoint()   # exactly at cap: fine
        stats.physical_reads = 106
        with pytest.raises(BudgetExceededError) as excinfo:
            meter.checkpoint()
        assert excinfo.value.reason.limit == "physical_reads"
        assert excinfo.value.reason.spent == 6

    def test_deadline_with_injected_clock(self):
        clock = FakeClock()
        meter = QueryBudget(deadline_seconds=1.0).meter(clock=clock)
        clock.now = 0.9
        meter.checkpoint()
        clock.now = 1.5
        with pytest.raises(BudgetExceededError) as excinfo:
            meter.checkpoint()
        reason = excinfo.value.reason
        assert reason.limit == "deadline"
        assert "1.5" in str(reason) or "deadline" in str(reason)

    def test_reason_as_dict_is_json_ready(self):
        meter = QueryBudget(max_candidates=0).meter()
        meter.enter_refinement()
        with pytest.raises(BudgetExceededError) as excinfo:
            meter.charge_candidate()
        as_dict = excinfo.value.reason.as_dict()
        assert as_dict["phase"] == PHASE_REFINEMENT
        assert as_dict["limit"] == "candidates"


class TestQueryResultType:
    def test_behaves_as_list(self):
        result = QueryResult([TwigMatch(doc_id=1, images=())])
        assert len(result) == 1
        assert result == [TwigMatch(doc_id=1, images=())]
        assert not result.approximate
        assert result.degradation_reason is None

    def test_doc_ids_sorted_distinct(self):
        result = QueryResult([TwigMatch(doc_id=3, images=()),
                              TwigMatch(doc_id=1, images=()),
                              TwigMatch(doc_id=3, images=())])
        assert result.doc_ids == [1, 3]

    def test_empty_equality_with_literal(self):
        assert QueryResult() == []


class TestQueryDegradation:
    def test_exact_result_is_not_approximate(self, index):
        result = index.query(QUERY)
        assert not result.approximate
        assert result.doc_ids == [1, 2, 3]

    def test_generous_budget_is_identity(self, index):
        exact = index.query(QUERY)
        budgeted = index.query(QUERY, budget=QueryBudget(
            max_range_queries=10_000, max_candidates=10_000))
        assert list(budgeted) == list(exact)
        assert not budgeted.approximate

    def test_refinement_exhaustion_degrades_to_superset(self, index):
        exact = index.query(QUERY)
        result = index.query(QUERY,
                             budget=QueryBudget(max_candidates=1))
        assert result.approximate
        assert set(result.doc_ids) >= set(exact.doc_ids)
        reason = result.degradation_reason
        assert reason.phase == PHASE_REFINEMENT
        assert reason.limit == "candidates"
        # Candidate entries carry no verified embedding.
        assert all(match.images == () for match in result)

    def test_degraded_stats_are_marked(self, index):
        pattern = QUERY
        result, stats = index.query_with_stats(
            pattern, budget=QueryBudget(max_candidates=1))
        assert result.approximate
        assert stats.approximate
        assert stats.degradation_reason is result.degradation_reason

    def test_filter_exhaustion_is_a_hard_error(self, index):
        with pytest.raises(BudgetExceededError) as excinfo:
            index.query(QUERY, budget=QueryBudget(max_range_queries=0))
        assert excinfo.value.reason.phase == PHASE_FILTER

    def test_zero_candidate_budget_still_superset(self, index):
        exact = index.query(QUERY)
        result = index.query(QUERY,
                             budget=QueryBudget(max_candidates=0))
        assert result.approximate
        assert set(result.doc_ids) >= set(exact.doc_ids)

    def test_reason_renders_human_readable(self, index):
        result = index.query(QUERY,
                             budget=QueryBudget(max_candidates=1))
        text = str(result.degradation_reason)
        assert "candidates" in text and "refinement" in text

    def test_document_strategy_degrades_too(self, index):
        exact = index.query(QUERY, strategy="document")
        result = index.query(QUERY, strategy="document",
                             budget=QueryBudget(max_candidates=1))
        assert result.approximate
        assert set(result.doc_ids) >= set(exact.doc_ids)
