"""Documentation consistency: the docs reference real files and symbols."""

import os
import re

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(name):
    with open(os.path.join(REPO, name), encoding="utf-8") as handle:
        return handle.read()


class TestDocsExist:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/PAPER_MAP.md"])
    def test_present_and_substantial(self, name):
        text = read(name)
        assert len(text) > 2000, f"{name} looks like a stub"

    def test_design_confirms_paper_identity(self):
        text = read("DESIGN.md")
        assert "Rao" in text and "ICDE 2004" in text


class TestReferencedPathsExist:
    def test_design_bench_targets_exist(self):
        text = read("DESIGN.md")
        for target in re.findall(r"`(benchmarks/[\w./]+\.py)`", text):
            assert os.path.exists(os.path.join(REPO, target)), target

    def test_paper_map_paths_exist(self):
        text = read("docs/PAPER_MAP.md")
        for target in re.findall(r"`((?:src/)?repro/[\w./]+\.py)", text):
            path = target if target.startswith("src/") else "src/" + target
            assert os.path.exists(os.path.join(REPO, path)), target
        for target in re.findall(r"`(tests/[\w./]+\.py)", text):
            assert os.path.exists(os.path.join(REPO, target)), target
        for target in re.findall(r"`(benchmarks/[\w./]+\.py)", text):
            assert os.path.exists(os.path.join(REPO, target)), target

    def test_readme_examples_exist(self):
        text = read("README.md")
        for target in re.findall(r"examples/(\w+\.py)", text):
            assert os.path.exists(os.path.join(REPO, "examples", target))

    def test_every_bench_is_indexed_in_design(self):
        text = read("DESIGN.md")
        bench_dir = os.path.join(REPO, "benchmarks")
        for name in sorted(os.listdir(bench_dir)):
            if name.startswith("bench_") and name.endswith(".py"):
                assert name in text, (
                    f"{name} missing from DESIGN.md experiment index")


class TestPaperMapSymbols:
    def test_mapped_tests_are_real(self):
        """Every `tests/...::symbol` reference resolves to a real name."""
        text = read("docs/PAPER_MAP.md")
        for path, symbol in re.findall(r"`(tests/[\w.]+\.py)::(\w+)", text):
            source = read(path)
            assert re.search(rf"(def|class)\s+{symbol}\b", source), (
                f"{path}::{symbol} not found")
