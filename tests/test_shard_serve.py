"""Serving-tier integration for shard directories (docs/SHARDING.md).

The registry mounts a shard directory exactly like a single index file:
same lease/generation discipline, same cached scrub verdict behind
``/healthz``, and hot reload picks up a new catalog generation written
by ``prix rebalance``.
"""

import pytest

from repro.datasets import dblp
from repro.serve.registry import IndexRegistry
from repro.shard import ShardedIndex, build_shards, rebalance

PATTERN = "//inproceedings//author"


@pytest.fixture(scope="module")
def corpus():
    return dblp(n_records=40, seed=5).documents


@pytest.fixture
def shard_dir(corpus, tmp_path):
    target = str(tmp_path / "shards")
    build_shards(corpus, target, shards=2)
    return target


@pytest.fixture
def registry(shard_dir):
    registry = IndexRegistry()
    registry.mount("default", shard_dir, backend="mmap")
    yield registry
    registry.close_all()


def test_mount_lease_and_query(registry, corpus):
    with registry.lease("default") as mount:
        assert isinstance(mount.index, ShardedIndex)
        assert mount.index.doc_count == len(corpus)
        assert len(mount.index.query(PATTERN)) > 0


def test_describe_reports_shard_count(registry):
    row = registry.describe()["default"]
    assert row["shards"] == 2
    assert row["generation"] == 1


def test_health_parses_cached_tree_scrub(registry):
    row = registry.health()["default"]
    assert row["healthy"] is True
    assert row["scrub"]["catalog_ok"] is True
    assert row["scrub"]["index_count"] == 2


def test_stats_break_down_per_shard(registry):
    with registry.lease("default") as mount:
        mount.index.query(PATTERN)
    row = registry.stats()["default"]
    assert len(row["shards"]) == 2
    assert row["scatter"]["queries"] == 1
    assert row["physical_reads"] == sum(shard["physical_reads"]
                                        for shard in row["shards"])


def test_reload_swaps_in_rebalanced_generation(registry, shard_dir,
                                               corpus):
    before = None
    with registry.lease("default") as mount:
        before = [(m.doc_id, m.images) for m in mount.index.query(PATTERN)]
    report = rebalance(shard_dir, shards=4, workers=1)
    assert report.generation == 2
    assert registry.reload("default", timeout=10.0) == 2
    row = registry.describe()["default"]
    assert row["generation"] == 2
    assert row["shards"] == 4
    with registry.lease("default") as mount:
        assert mount.index.catalog.generation == 2
        after = [(m.doc_id, m.images) for m in mount.index.query(PATTERN)]
    assert after == before


def test_rescrub_refreshes_shard_verdict(registry):
    registry.rescrub("default")
    assert registry.health()["default"]["healthy"] is True
