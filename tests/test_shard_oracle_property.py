"""The sharding oracle property (docs/SHARDING.md, acceptance gate).

For every Table 3 query and every shard count in {1, 2, 4, 8}, the
scatter-gather answer over a seeded corpus must be *byte-identical* to
the monolithic index's answer under the canonical serialization --
sharding is an execution strategy, never a semantics change.  A failing
case dumps an evidence bundle (query, shard count, the summed per-shard
physical reads, and both serializations) to ``PRIX_SHARD_ARTIFACT``
when that variable names a path, so the CI shard matrix can upload it.

The degradation half of the property: under a refinement-phase budget
every sharded answer must still be a sound superset of the exact
answer's documents, marked ``approximate`` -- degraded never means
silently wrong.
"""

import json
import os

import pytest

from repro.bench.workloads import QUERIES
from repro.prix.budget import QueryBudget
from repro.prix.index import PrixIndex
from repro.query.xpath import parse_xpath
from repro.shard import ShardedIndex, build_shards

SHARD_COUNTS = (1, 2, 4, 8)
ARTIFACT = os.environ.get("PRIX_SHARD_ARTIFACT")

_EVIDENCE = []


def canonical_bytes(matches):
    """The canonical answer serialization: sorted (doc_id, images)
    rows as compact sorted-key JSON bytes."""
    rows = sorted((m.doc_id, [list(image) for image in m.images])
                  for m in matches)
    return json.dumps(rows, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def dump_evidence(case):
    _EVIDENCE.append(case)
    if ARTIFACT:
        with open(ARTIFACT, "w", encoding="utf-8") as handle:
            json.dump(_EVIDENCE, handle, indent=2, sort_keys=True,
                      default=str)
    return json.dumps(case, indent=2, sort_keys=True, default=str)


@pytest.fixture(scope="module")
def corpora(tiny_dblp, tiny_swissprot, tiny_treebank):
    return {"dblp": tiny_dblp, "swissprot": tiny_swissprot,
            "treebank": tiny_treebank}


@pytest.fixture(scope="module")
def monoliths(corpora):
    built = {name: PrixIndex.build(corpus.documents)
             for name, corpus in corpora.items()}
    yield built
    for index in built.values():
        index.close()


@pytest.fixture(scope="module")
def shard_dirs(corpora, tmp_path_factory):
    base = tmp_path_factory.mktemp("shard-oracle")
    built = {}
    for name, corpus in corpora.items():
        for count in SHARD_COUNTS:
            target = str(base / f"{name}-{count}")
            build_shards(corpus.documents, target, shards=count)
            built[name, count] = target
    return built


@pytest.mark.parametrize("count", SHARD_COUNTS)
@pytest.mark.parametrize("spec", QUERIES, ids=[s.qid for s in QUERIES])
def test_sharded_answer_is_byte_identical(spec, count, monoliths,
                                          shard_dirs):
    pattern = parse_xpath(spec.xpath)
    expected = canonical_bytes(monoliths[spec.corpus].query(pattern))
    with ShardedIndex.open(shard_dirs[spec.corpus, count]) as sharded:
        matches, stats = sharded.query_with_stats(pattern)
    actual = canonical_bytes(matches)

    per_shard_reads = [row["physical_reads"] for row in stats.per_shard]
    evidence = {
        "qid": spec.qid,
        "corpus": spec.corpus,
        "xpath": spec.xpath,
        "shard_count": count,
        "per_shard_physical_reads": per_shard_reads,
        "summed_physical_reads": sum(per_shard_reads),
        "monolith_answer": expected.decode("utf-8"),
        "sharded_answer": actual.decode("utf-8"),
    }
    assert stats.physical_reads == sum(per_shard_reads), \
        "aggregate stats must equal the per-shard sum\n" + \
        dump_evidence(evidence)
    if actual != expected:
        detail = dump_evidence(evidence)
        pytest.fail(f"{spec.qid} @ {count} shard(s): sharded answer "
                    f"diverges from the monolith\n{detail}")
    assert not matches.approximate


@pytest.mark.parametrize("count", SHARD_COUNTS)
@pytest.mark.parametrize("spec", QUERIES, ids=[s.qid for s in QUERIES])
def test_degraded_answer_is_sound_superset(spec, count, monoliths,
                                           shard_dirs):
    pattern = parse_xpath(spec.xpath)
    exact_docs = {m.doc_id for m in monoliths[spec.corpus].query(pattern)}
    with ShardedIndex.open(shard_dirs[spec.corpus, count]) as sharded:
        degraded = sharded.query(pattern,
                                 budget=QueryBudget(max_candidates=0))
    assert degraded.approximate
    got = set(degraded.doc_ids)
    if not got >= exact_docs:
        detail = dump_evidence({
            "qid": spec.qid, "corpus": spec.corpus,
            "shard_count": count, "kind": "false-dismissal",
            "missing_docs": sorted(exact_docs - got)})
        pytest.fail(f"{spec.qid} @ {count} shard(s): degraded answer "
                    f"dropped true documents\n{detail}")
