"""Matching-strategy tests: trie traversal vs document-at-a-time.

The document-at-a-time fallback (an optimizer extension documented in
DESIGN.md) collects the documents containing the query's rarest LPS
label via the Docid index and enumerates subsequences inside each; it
must be answer-identical to Algorithm 1's trie traversal under every
combination of variant, ordering and MaxGap setting.
"""

import random

import pytest

from helpers import make_random_tree, make_random_twig
from repro.baselines.naive import naive_matches
from repro.prix.index import PrixIndex
from repro.prix.matcher import _document_lps, _subsequences_in_document
from repro.prix.plan import build_plan
from repro.prix.filtering import FilterStats
from repro.query.twig import collapse
from repro.query.xpath import parse_xpath
from repro.xmlkit.parser import parse_document
from repro.xmlkit.tree import Document


@pytest.fixture(scope="module")
def corpus():
    rng = random.Random(314)
    return [Document(make_random_tree(rng, max_nodes=20), doc_id=i + 1)
            for i in range(6)]


class TestStrategyEquivalence:
    @pytest.mark.parametrize("variant", ["rp", "ep"])
    def test_forced_strategies_agree(self, corpus, variant):
        index = PrixIndex.build(corpus)
        rng = random.Random(99)
        for _ in range(12):
            pattern = make_random_twig(rng)
            trie = {(m.doc_id, m.canonical)
                    for m in index.query(pattern, variant=variant,
                                         strategy="trie")}
            document = {(m.doc_id, m.canonical)
                        for m in index.query(pattern, variant=variant,
                                             strategy="document")}
            assert trie == document

    def test_auto_matches_oracle(self, corpus):
        index = PrixIndex.build(corpus)
        rng = random.Random(100)
        for _ in range(12):
            pattern = make_random_twig(rng)
            got = {(m.doc_id, m.canonical)
                   for m in index.query(pattern, strategy="auto")}
            want = {(d.doc_id, emb) for d in corpus
                    for emb in naive_matches(d, pattern)}
            assert got == want

    def test_ordered_mode_consistent(self, corpus):
        index = PrixIndex.build(corpus)
        pattern = parse_xpath("//a[./b]/c")
        trie = {(m.doc_id, m.canonical)
                for m in index.query(pattern, ordered=True,
                                     strategy="trie")}
        document = {(m.doc_id, m.canonical)
                    for m in index.query(pattern, ordered=True,
                                         strategy="document")}
        assert trie == document


class TestStrategySelection:
    def test_rare_needle_triggers_document_strategy(self):
        docs = [parse_document(
            f"<entry><common/><field>v{i}</field></entry>", i + 1)
            for i in range(50)]
        docs.append(parse_document(
            "<entry><needle><x/></needle><common/></entry>", 51))
        index = PrixIndex.build(docs)
        _, stats = index.query_with_stats("//entry/needle/x",
                                          variant="rp")
        assert stats.strategy == "document"
        assert stats.candidate_documents == 1

    def test_common_labels_use_trie(self):
        docs = [parse_document("<a><b><c/></b></a>", i + 1)
                for i in range(400)]
        index = PrixIndex.build(docs)
        _, stats = index.query_with_stats("//a/b", variant="rp",
                                          strategy="auto")
        # Every document contains the labels: fallback must not engage.
        assert stats.strategy == "trie"

    def test_stats_report_strategy(self, corpus):
        index = PrixIndex.build(corpus)
        _, stats = index.query_with_stats("//a/b", strategy="trie")
        assert stats.strategy == "trie"
        _, stats = index.query_with_stats("//a/b", strategy="document")
        assert stats.strategy == "document"


class TestDocumentEnumerator:
    def test_positions_match_labels(self, fig2_doc):
        index = PrixIndex.build([fig2_doc])
        variant = index._variants["rp"]
        view = index._view_loader(variant)(1)
        lps_seq = _document_lps(view)
        assert lps_seq == list("ACBCCBACAEEEDA")

        from repro.datasets import figure2_query
        plan = build_plan(collapse(figure2_query()), extended=False)
        stats = FilterStats()
        found = list(_subsequences_in_document(lps_seq, plan, None, stats))
        assert (3, 7, 11, 13, 14) in found
        for positions in found:
            assert all(lps_seq[p - 1] == label
                       for p, label in zip(positions, plan.qlps))

    def test_absent_label_short_circuits(self, fig2_doc):
        index = PrixIndex.build([fig2_doc])
        view = index._view_loader(index._variants["rp"])(1)
        lps_seq = _document_lps(view)
        plan = build_plan(collapse(parse_xpath("//ZZZ/A")), extended=False)
        stats = FilterStats()
        assert list(_subsequences_in_document(lps_seq, plan, None,
                                              stats)) == []
        assert stats.nodes_visited == 0
