"""The CI shard matrix (docs/SHARDING.md): seeds x shards x workers.

Each cell seeds a fresh dblp corpus, builds it sharded at the cell's
worker count, and holds the oracle: every dblp Table 3 answer
byte-identical to a monolithic index under the canonical serialization,
a parallel build byte-identical on disk to a serial one, and a
refinement-budget degradation that is a sound approximate superset.

Environment (the CI job pins one cell per matrix leg):

- ``PRIX_SHARD_SEEDS``: comma-separated corpus seeds (default 11,23,47)
- ``PRIX_SHARD_COUNTS``: comma-separated shard counts (default 1,4)
- ``PRIX_SHARD_WORKERS``: comma-separated worker counts (default 1,4)
- ``PRIX_SHARD_ARTIFACT``: path; a failing cell dumps its evidence
  bundle (query, per-shard physical reads, both serializations) there
  as JSON before the assertion fires.
"""

import filecmp
import json
import os

import pytest

from repro.bench.workloads import queries_for
from repro.datasets import dblp
from repro.prix.budget import QueryBudget
from repro.prix.index import PrixIndex
from repro.query.xpath import parse_xpath
from repro.shard import ShardedIndex, build_shards

SEEDS = [int(s) for s in
         os.environ.get("PRIX_SHARD_SEEDS", "11,23,47").split(",")]
COUNTS = [int(s) for s in
          os.environ.get("PRIX_SHARD_COUNTS", "1,4").split(",")]
WORKERS = [int(s) for s in
           os.environ.get("PRIX_SHARD_WORKERS", "1,4").split(",")]
N_RECORDS = 60

_EVIDENCE = []


def dump_evidence(cell):
    _EVIDENCE.append(cell)
    artifact = os.environ.get("PRIX_SHARD_ARTIFACT")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(_EVIDENCE, handle, indent=2, sort_keys=True,
                      default=str)
    return json.dumps(cell, indent=2, sort_keys=True, default=str)


def canonical_bytes(matches):
    rows = sorted((m.doc_id, [list(image) for image in m.images])
                  for m in matches)
    return json.dumps(rows, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


@pytest.fixture(scope="module", params=SEEDS)
def seeded(request):
    seed = request.param
    docs = dblp(n_records=N_RECORDS, seed=seed).documents
    monolith = PrixIndex.build(docs)
    yield seed, docs, monolith
    monolith.close()


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("shards", COUNTS)
def test_shard_matrix_cell(seeded, shards, workers, tmp_path):
    seed, docs, monolith = seeded
    target = str(tmp_path / "shards")
    build_shards(docs, target, shards=shards, workers=workers)

    if workers > 1:
        # The worker count must not leak into the bytes on disk.
        serial = str(tmp_path / "serial")
        build_shards(docs, serial, shards=shards, workers=1)
        for name in sorted(os.listdir(target)):
            identical = filecmp.cmp(os.path.join(target, name),
                                    os.path.join(serial, name),
                                    shallow=False)
            if not identical:
                detail = dump_evidence({
                    "seed": seed, "shards": shards, "workers": workers,
                    "kind": "nondeterministic-build", "file": name})
                pytest.fail(f"parallel build diverges from serial\n"
                            f"{detail}")

    specs = queries_for("dblp")
    with ShardedIndex.open(target) as sharded:
        for spec in specs:
            pattern = parse_xpath(spec.xpath)
            expected = canonical_bytes(monolith.query(pattern))
            matches, stats = sharded.query_with_stats(pattern)
            actual = canonical_bytes(matches)
            per_shard = [row["physical_reads"]
                         for row in stats.per_shard]
            if actual != expected:
                detail = dump_evidence({
                    "seed": seed, "shards": shards, "workers": workers,
                    "qid": spec.qid, "kind": "answer-divergence",
                    "per_shard_physical_reads": per_shard,
                    "summed_physical_reads": sum(per_shard),
                    "monolith_answer": expected.decode("utf-8"),
                    "sharded_answer": actual.decode("utf-8")})
                pytest.fail(f"{spec.qid}: sharded answer diverges from "
                            f"the monolith\n{detail}")
            assert stats.physical_reads == sum(per_shard)

            exact_docs = {m.doc_id for m in monolith.query(pattern)}
            degraded = sharded.query(
                pattern, budget=QueryBudget(max_candidates=0))
            assert degraded.approximate
            got = set(degraded.doc_ids)
            if not got >= exact_docs:
                detail = dump_evidence({
                    "seed": seed, "shards": shards, "workers": workers,
                    "qid": spec.qid, "kind": "false-dismissal",
                    "missing_docs": sorted(exact_docs - got)})
                pytest.fail(f"{spec.qid}: degraded answer dropped true "
                            f"documents\n{detail}")
