"""Tree model tests: numbering, traversal, extension."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_random_tree
from repro.xmlkit.errors import TreeConstructionError
from repro.xmlkit.tree import (DUMMY_TAG, VALUE_LABEL_PREFIX, Document,
                               XMLNode, copy_tree, element,
                               extend_with_dummies, same_tree,
                               sequence_label, value)


def small_tree():
    #      a
    #    / | \
    #   b  c  d
    #  /|     |
    # e f     g
    root = element("a")
    b = element("b")
    b.append(element("e"))
    b.append(element("f"))
    root.append(b)
    root.append(element("c"))
    d = element("d")
    d.append(element("g"))
    root.append(d)
    return root


class TestNodeBasics:
    def test_empty_label_rejected(self):
        with pytest.raises(TreeConstructionError):
            XMLNode("")

    def test_value_node_cannot_have_children(self):
        with pytest.raises(TreeConstructionError):
            value("txt").append(element("a"))

    def test_reparenting_rejected(self):
        child = element("b")
        element("a").append(child)
        with pytest.raises(TreeConstructionError):
            element("c").append(child)

    def test_text_concatenation(self):
        root = element("a")
        root.append(value("x"))
        b = element("b")
        b.append(value("y"))
        root.append(b)
        assert root.text() == "xy"

    def test_find_and_child_by_tag(self):
        root = small_tree()
        assert root.find("g").tag == "g"
        assert root.child_by_tag("c").tag == "c"
        assert root.child_by_tag("zzz") is None


class TestPostorderNumbering:
    def test_postorder_order(self):
        doc = Document(small_tree())
        tags = [n.tag for n in doc.nodes_in_postorder()]
        assert tags == ["e", "f", "b", "c", "g", "d", "a"]

    def test_numbers_are_one_based_contiguous(self):
        doc = Document(small_tree())
        numbers = [n.postorder for n in doc.nodes_in_postorder()]
        assert numbers == list(range(1, 8))

    def test_root_gets_largest_number(self):
        doc = Document(small_tree())
        assert doc.root.postorder == doc.size

    def test_node_by_postorder_roundtrip(self):
        doc = Document(small_tree())
        for node in doc.nodes_in_postorder():
            assert doc.node_by_postorder(node.postorder) is node

    def test_children_numbers_ascending(self):
        rng = random.Random(3)
        for _ in range(20):
            doc = Document(make_random_tree(rng))
            for node in doc.nodes_in_postorder():
                numbers = [c.postorder for c in node.children]
                assert numbers == sorted(numbers)

    def test_subtree_numbers_contiguous(self):
        rng = random.Random(4)
        for _ in range(20):
            doc = Document(make_random_tree(rng))
            for node in doc.nodes_in_postorder():
                numbers = sorted(d.postorder for d in node.iter_subtree())
                assert numbers == list(
                    range(node.postorder - len(numbers) + 1,
                          node.postorder + 1))


class TestRegionEncoding:
    def test_containment_matches_ancestry(self):
        rng = random.Random(5)
        for _ in range(20):
            doc = Document(make_random_tree(rng))
            nodes = doc.nodes_in_postorder()
            for node in nodes:
                for other in nodes:
                    is_ancestor = False
                    walk = other.parent
                    while walk is not None:
                        if walk is node:
                            is_ancestor = True
                            break
                        walk = walk.parent
                    contains = (node.start < other.start
                                and other.end < node.end)
                    assert contains == is_ancestor

    def test_levels(self):
        doc = Document(small_tree())
        assert doc.root.level == 1
        assert doc.root.children[0].level == 2
        assert doc.max_depth() == 3


class TestLeavesAndCounts:
    def test_leaves(self):
        doc = Document(small_tree())
        assert doc.leaves() == [("e", 1), ("f", 2), ("c", 4), ("g", 5)]

    def test_counts(self):
        root = small_tree()
        root.append(value("txt"))
        doc = Document(root)
        assert doc.element_count() == 7
        assert doc.value_count() == 1


class TestCopyAndEquality:
    def test_copy_is_structurally_equal(self):
        root = small_tree()
        assert same_tree(root, copy_tree(root))

    def test_copy_is_deep(self):
        root = small_tree()
        clone = copy_tree(root)
        clone.children[0].tag = "changed"
        assert root.children[0].tag == "b"

    def test_same_tree_detects_label_difference(self):
        a, b = small_tree(), small_tree()
        b.find("g").tag = "x"
        assert not same_tree(a, b)

    def test_same_tree_detects_shape_difference(self):
        a, b = small_tree(), small_tree()
        b.find("c").append(element("new"))
        assert not same_tree(a, b)

    def test_same_tree_detects_value_flag(self):
        a = element("a")
        a.append(value("x"))
        b = element("a")
        b.append(element("x"))
        assert not same_tree(a, b)


class TestExtendWithDummies:
    def test_every_original_leaf_gets_dummy(self):
        extended = extend_with_dummies(small_tree())
        for node in extended.iter_subtree():
            if node.is_dummy:
                continue
            if not node.children:
                raise AssertionError(
                    f"original node {node.tag} left as a leaf")
        dummies = [n for n in extended.iter_subtree() if n.is_dummy]
        assert len(dummies) == 4

    def test_original_not_mutated(self):
        root = small_tree()
        extend_with_dummies(root)
        assert all(not n.is_dummy for n in root.iter_subtree())

    def test_value_leaves_extended(self):
        root = element("a")
        root.append(value("txt"))
        extended = extend_with_dummies(root)
        text_node = extended.children[0]
        assert text_node.is_value
        assert text_node.children[0].is_dummy


class TestSequenceLabels:
    def test_element_label_unchanged(self):
        assert sequence_label(element("a")) == "a"

    def test_value_label_prefixed(self):
        assert sequence_label(value("a")) == VALUE_LABEL_PREFIX + "a"

    def test_value_and_element_never_collide(self):
        assert sequence_label(value("title")) != sequence_label(
            element("title"))

    def test_dummy_tag_is_not_a_valid_name(self):
        assert DUMMY_TAG.startswith("#")


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_renumber_is_idempotent(seed):
    rng = random.Random(seed)
    doc = Document(make_random_tree(rng))
    first = [(n.postorder, n.start, n.end, n.level)
             for n in doc.nodes_in_postorder()]
    doc.renumber()
    second = [(n.postorder, n.start, n.end, n.level)
              for n in doc.nodes_in_postorder()]
    assert first == second
