"""XB-tree and TwigStackXB tests."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_random_tree, make_random_twig
from repro.baselines.naive import naive_matches
from repro.baselines.region import Element, build_stream_entries
from repro.baselines.twigstackxb import XBForest, twig_stack_xb
from repro.baselines.xbtree import XBTree
from repro.query.xpath import parse_xpath
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.xmlkit.parser import parse_document
from repro.xmlkit.tree import Document


def make_pool(page_size=256):
    return BufferPool(Pager.in_memory(page_size=page_size))


def elements(n):
    return [Element(2 * i + 1, 2 * i + 2, 1, 1, i + 1) for i in range(n)]


class TestXBTree:
    def test_single_page(self):
        pool = make_pool()
        tree = XBTree.build(pool, elements(5))
        assert tree.height == 1
        pointer = tree.pointer()
        assert pointer.at_leaf
        assert pointer.head().start == 1

    def test_multilevel(self):
        pool = make_pool(page_size=256)
        tree = XBTree.build(pool, elements(100))
        assert tree.height >= 2
        pointer = tree.pointer()
        assert not pointer.at_leaf
        assert pointer.left == 1

    def test_empty(self):
        pool = make_pool()
        tree = XBTree.build(pool, [])
        assert tree.pointer().eof

    def test_drilldown_reaches_elements(self):
        pool = make_pool(page_size=256)
        tree = XBTree.build(pool, elements(100))
        pointer = tree.pointer()
        while not pointer.at_leaf:
            pointer.drill_down()
        assert pointer.head().start == 1

    def test_full_leaf_scan_via_drilldown(self):
        pool = make_pool(page_size=256)
        entries = elements(60)
        tree = XBTree.build(pool, entries)
        pointer = tree.pointer()
        seen = []
        while not pointer.eof:
            if pointer.at_leaf:
                seen.append(pointer.head())
                pointer.advance()
            else:
                pointer.drill_down()
        assert seen == entries

    def test_coarse_advance_skips_subtrees(self):
        pool = make_pool(page_size=256)
        tree = XBTree.build(pool, elements(200))
        pointer = tree.pointer()
        assert not pointer.at_leaf
        first_left = pointer.left
        pointer.advance()  # skips the whole first child page region
        assert pointer.eof or pointer.left > first_left

    def test_internal_ranges_cover_children(self):
        pool = make_pool(page_size=256)
        entries = elements(150)
        tree = XBTree.build(pool, entries)
        is_leaf, root_entries = tree._read(tree.root_page)
        if not is_leaf:
            for left, right, child in root_entries:
                child_leaf, child_entries = tree._read(child)
                starts = [e.start if child_leaf else e[0]
                          for e in child_entries]
                ends = [e.end if child_leaf else e[1]
                        for e in child_entries]
                assert left == min(starts)
                assert right == max(ends)


class TestTwigStackXB:
    def test_matches_twigstack_results(self):
        docs = [parse_document("<a><b><c/></b><c/></a>", 1),
                parse_document("<a><b/></a>", 2)]
        pool = make_pool()
        forest = XBForest.build(build_stream_entries(docs), pool)
        matches, _ = twig_stack_xb(parse_xpath("//a[./b]//c"), forest)
        truth = {(d.doc_id, emb) for d in docs
                 for emb in naive_matches(d, parse_xpath("//a[./b]//c"),
                                          semantics="xpath")}
        assert matches == truth

    def test_skipping_happens_on_scattered_needles(self):
        """Needle-in-haystack: the abundant child stream (url) is
        advanced at coarse level while the rare parent's (www) stack is
        empty, so whole leaf-page regions are never read."""
        parts = []
        for i in range(300):
            if i % 150 == 1:
                parts.append("<www><url/></www>")
            else:
                parts.append("<article><url/></article>")
        text = "<dblp>" + "".join(parts) + "</dblp>"
        docs = [parse_document(text, 1)]
        pool = make_pool(page_size=512)
        forest = XBForest.build(build_stream_entries(docs), pool)
        matches, stats = twig_stack_xb(parse_xpath("//www/url"), forest)
        assert len(matches) == 2
        assert stats.coarse_advances > 0
        # Far fewer concrete url elements touched than exist (300).
        assert stats.elements_scanned < 150

    def test_page_reads_below_twigstack(self):
        """The XB skip must translate into fewer physical page reads
        than a full TwigStack scan on the same workload."""
        from repro.baselines.region import StreamSet
        from repro.baselines.twigstack import twig_stack
        parts = []
        for i in range(400):
            if i == 100:
                parts.append("<www><editor/><url/></www>")
            else:
                parts.append("<article><author>x</author>"
                             "<title>t</title></article>")
        text = "<dblp>" + "".join(parts) + "</dblp>"
        docs = [parse_document(text, 1)]
        pattern = parse_xpath("//article/author")

        ts_pool = make_pool(page_size=512)
        streams = StreamSet.build(docs, ts_pool)
        ts_pool.flush_and_clear()
        ts_before = ts_pool.stats.physical_reads
        ts_matches, _ = twig_stack(pattern, streams)
        ts_pages = ts_pool.stats.physical_reads - ts_before

        xb_pool = make_pool(page_size=512)
        forest = XBForest.build(build_stream_entries(docs), xb_pool)
        xb_pool.flush_and_clear()
        xb_before = xb_pool.stats.physical_reads
        xb_matches, _ = twig_stack_xb(pattern, forest)
        xb_pages = xb_pool.stats.physical_reads - xb_before

        assert xb_matches == ts_matches
        assert xb_pages <= ts_pages * 1.5  # XB never catastrophically worse


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_twigstackxb_matches_xpath_oracle(seed):
    rng = random.Random(seed)
    docs = [Document(make_random_tree(rng, max_nodes=15), doc_id=i + 1)
            for i in range(3)]
    pattern = make_random_twig(rng, star_p=0.0, absolute_p=0.0)
    pool = make_pool(page_size=256)  # small pages force real XB levels
    forest = XBForest.build(build_stream_entries(docs), pool)
    got, _ = twig_stack_xb(pattern, forest)
    truth = {(d.doc_id, emb) for d in docs
             for emb in naive_matches(d, pattern, semantics="xpath")}
    assert got == truth
