"""Serializer tests, including parse/serialize round trips."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_random_tree
from repro.xmlkit.parser import parse_document, parse_fragment
from repro.xmlkit.serializer import serialize
from repro.xmlkit.tree import Document, element, same_tree, value


class TestSerialization:
    def test_empty_element(self):
        assert serialize(element("a")) == "<a/>"

    def test_nested(self):
        root = element("a")
        root.append(element("b"))
        assert serialize(root) == "<a><b/></a>"

    def test_text(self):
        root = element("a")
        root.append(value("hi"))
        assert serialize(root) == "<a>hi</a>"

    def test_text_escaping(self):
        root = element("a")
        root.append(value("x<y&z>"))
        assert serialize(root) == "<a>x&lt;y&amp;z&gt;</a>"

    def test_attribute_subelement_rendered_as_attribute(self):
        root = parse_fragment('<a key="v"><b/></a>')
        assert serialize(root) == '<a key="v"><b/></a>'

    def test_attribute_value_escaping(self):
        root = parse_fragment('<a k="x&amp;y"/>')
        assert serialize(root) == '<a k="x&amp;y"/>'

    def test_accepts_document_wrapper(self):
        doc = Document(element("a"))
        assert serialize(doc) == "<a/>"


class TestRoundTrip:
    def test_simple_roundtrip(self):
        text = '<a k="1"><b>x</b><c/></a>'
        assert serialize(parse_fragment(text)) == text

    def test_random_tree_roundtrips(self):
        # value_p=0: adjacent text siblings legitimately merge on reparse,
        # which is standard XML behaviour, not a serializer defect.
        rng = random.Random(11)
        for _ in range(25):
            root = make_random_tree(rng, value_p=0.0)
            reparsed = parse_fragment(serialize(root))
            assert same_tree(root, reparsed)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_roundtrip_property(seed):
    rng = random.Random(seed)
    doc = Document(make_random_tree(rng, value_p=0.0))
    text = serialize(doc)
    reparsed = parse_document(text)
    assert same_tree(doc.root, reparsed.root)
    assert serialize(reparsed) == text
