"""`QueryBudget.split` conservation laws (docs/SHARDING.md).

The sharded query path slices one caller budget across N shards; these
tests pin the arithmetic the merge-soundness argument leans on: the
children's countable caps sum to *exactly* the parent's (never more --
the shards together cannot admit more work than the caller allowed;
never fewer -- no budget silently evaporates), the wall-clock deadline
is shared rather than divided, and split composes with fork and with
headroom grants.
"""

import pytest

from repro.prix.budget import QueryBudget
from repro.storage.stats import IOStats

COUNTABLE = ("max_range_queries", "max_physical_reads", "max_candidates")


def caps(budget):
    return {name: getattr(budget, name) for name in COUNTABLE}


@pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 16])
@pytest.mark.parametrize("cap", [0, 1, 2, 5, 8, 100, 101, 1000])
def test_split_conserves_every_countable_cap_exactly(n, cap):
    parent = QueryBudget(max_range_queries=cap, max_physical_reads=cap,
                         max_candidates=cap, deadline_seconds=2.5)
    children = parent.split(n)
    assert len(children) == n
    for name in COUNTABLE:
        total = sum(getattr(child, name) for child in children)
        assert total == cap, (name, n, cap, total)
        # No child may exceed its fair share by more than the remainder
        # unit -- the spill is spread one unit at a time.
        shares = sorted(getattr(child, name) for child in children)
        assert shares[-1] - shares[0] <= 1


@pytest.mark.parametrize("n", [1, 2, 4, 8])
def test_split_shares_the_deadline_instead_of_dividing_it(n):
    parent = QueryBudget(max_candidates=10, deadline_seconds=3.0)
    for child in parent.split(n):
        assert child.deadline_seconds == 3.0


def test_split_keeps_uncapped_limits_uncapped():
    parent = QueryBudget(max_candidates=9)  # everything else None
    for child in parent.split(4):
        assert child.max_range_queries is None
        assert child.max_physical_reads is None
        assert child.deadline_seconds is None
    assert sum(c.max_candidates for c in parent.split(4)) == 9


def test_split_rejects_nonpositive_counts():
    with pytest.raises(ValueError):
        QueryBudget(max_candidates=4).split(0)
    with pytest.raises(ValueError):
        QueryBudget(max_candidates=4).split(-2)


def test_fork_then_split_equals_split_of_the_original():
    parent = QueryBudget(max_range_queries=11, max_physical_reads=7,
                         max_candidates=30, deadline_seconds=1.0)
    direct = parent.split(4)
    forked = parent.fork().split(4)
    assert [caps(a) for a in direct] == [caps(b) for b in forked]
    assert all(a.deadline_seconds == b.deadline_seconds
               for a, b in zip(direct, forked))


def test_split_children_fork_without_loosening():
    parent = QueryBudget(max_candidates=8, deadline_seconds=5.0)
    child = parent.split(2)[0]
    tightened = child.fork(deadline_seconds=1.0)
    assert tightened.max_candidates == child.max_candidates
    assert tightened.deadline_seconds == 1.0
    loosened = child.fork(deadline_seconds=9.0)
    assert loosened.deadline_seconds == 5.0  # min() wins


def test_sum_of_child_meters_equals_parent_charges():
    """Charging every child to its cap admits exactly the parent cap."""
    parent = QueryBudget(max_candidates=10)
    admitted = 0
    for child in parent.split(3):
        meter = child.meter()
        for _ in range(child.max_candidates):
            meter.charge_candidate()
            admitted += 1
        # The next charge over the child's slice must trip.
        with pytest.raises(Exception):
            meter.charge_candidate()
    assert admitted == 10


def test_grant_redistributes_only_unused_headroom():
    parent = QueryBudget(max_candidates=10, max_physical_reads=6,
                         deadline_seconds=2.0)
    first, second = parent.split(2)
    meter = first.meter(io_stats=IOStats())
    for _ in range(2):
        meter.charge_candidate()
    unused = meter.unused()
    assert unused["candidates"] == first.max_candidates - 2
    assert unused["physical_reads"] == first.max_physical_reads
    assert unused["range_queries"] is None
    topped = second.grant(candidates=unused["candidates"],
                          physical_reads=unused["physical_reads"])
    # Conservation across the redistribution: what the two shards may
    # admit in total is still exactly the parent's cap.
    assert 2 + (first.max_candidates - 2) == first.max_candidates
    assert topped.max_candidates + 2 == parent.max_candidates
    assert topped.max_physical_reads == parent.max_physical_reads
    assert topped.deadline_seconds == 2.0


def test_grant_ignores_uncapped_limits():
    budget = QueryBudget(max_candidates=None)
    assert budget.grant(candidates=5).max_candidates is None
