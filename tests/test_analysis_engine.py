"""Engine-level prixlint tests: suppressions, baselines, reporters,
discovery, exit codes, and the ``prix lint`` CLI wiring."""

import json

import pytest

from repro.analysis.baseline import (BaselineError, apply_baseline,
                                     load_baseline, write_baseline)
from repro.analysis.core import SourceFile, check_source
from repro.analysis.runner import (ALL_RULES, iter_python_files, lint_paths,
                                   main, rules_by_name)
from repro.analysis.rules_io import NoRawIoRule
from repro.cli import main as cli_main

STORAGE_PATH = "src/repro/storage/bptree.py"
RAW_OPEN = "handle = open('f.bin', 'rb')\n"


class TestSuppressions:
    def test_line_suppression_silences_named_rule(self):
        code = "handle = open('f')  # prixlint: disable=no-raw-io\n"
        source = SourceFile(STORAGE_PATH, code)
        assert check_source(source, [NoRawIoRule]) == []

    def test_line_suppression_is_rule_specific(self):
        code = "handle = open('f')  # prixlint: disable=seeded-rng\n"
        source = SourceFile(STORAGE_PATH, code)
        assert len(check_source(source, [NoRawIoRule])) == 1

    def test_disable_all_silences_everything(self):
        code = "handle = open('f')  # prixlint: disable=all\n"
        source = SourceFile(STORAGE_PATH, code)
        assert check_source(source, ALL_RULES) == []

    def test_file_level_suppression(self):
        code = ("# prixlint: disable-file=no-raw-io\n"
                "a = open('f')\nb = open('g')\n")
        source = SourceFile(STORAGE_PATH, code)
        assert check_source(source, [NoRawIoRule]) == []

    def test_suppression_only_covers_its_line(self):
        code = ("a = open('f')  # prixlint: disable=no-raw-io\n"
                "b = open('g')\n")
        source = SourceFile(STORAGE_PATH, code)
        findings = check_source(source, [NoRawIoRule])
        assert [finding.line for finding in findings] == [2]


class TestBaseline:
    def make_findings(self, tmp_path, code=RAW_OPEN * 1):
        target = tmp_path / "src" / "repro" / "storage" / "bptree.py"
        target.parent.mkdir(parents=True)
        target.write_text(code)
        return lint_paths([tmp_path]), target

    def test_round_trip_grandfathers_findings(self, tmp_path):
        result, _ = self.make_findings(tmp_path)
        assert result.findings
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, result.findings)
        rebaselined = lint_paths([tmp_path / "src"],
                                 baseline=load_baseline(baseline_file))
        assert rebaselined.findings == []
        assert len(rebaselined.grandfathered) == len(result.findings)
        assert rebaselined.exit_code == 0

    def test_new_occurrence_still_fails(self, tmp_path):
        result, target = self.make_findings(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, result.findings)
        # A second raw open -- even the same snippet text -- exceeds the
        # baselined count and must surface as new.
        target.write_text(RAW_OPEN + "x = 1\n" + RAW_OPEN)
        rebaselined = lint_paths([tmp_path / "src"],
                                 baseline=load_baseline(baseline_file))
        assert len(rebaselined.findings) == 1
        assert rebaselined.exit_code == 1

    def test_line_drift_does_not_invalidate_baseline(self, tmp_path):
        result, target = self.make_findings(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, result.findings)
        target.write_text("import struct\n\n\n" + RAW_OPEN)
        rebaselined = lint_paths([tmp_path / "src"],
                                 baseline=load_baseline(baseline_file))
        assert rebaselined.findings == []

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(BaselineError):
            load_baseline(bad)
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_apply_baseline_respects_counts(self, tmp_path):
        result, _ = self.make_findings(tmp_path, RAW_OPEN + RAW_OPEN)
        assert len(result.findings) == 2
        baseline = {result.findings[0].baseline_key: 1}
        new, grandfathered = apply_baseline(result.findings, baseline)
        assert len(new) == 1 and len(grandfathered) == 1


class TestRunner:
    def write_dirty_tree(self, tmp_path):
        target = tmp_path / "src" / "repro" / "storage" / "bptree.py"
        target.parent.mkdir(parents=True)
        target.write_text(RAW_OPEN)
        return tmp_path / "src"

    def test_discovery_skips_pycache(self, tmp_path):
        (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
        files = list(iter_python_files([tmp_path]))
        assert [path.name for path in files] == ["mod.py"]

    def test_exit_codes(self, tmp_path, capsys):
        dirty = self.write_dirty_tree(tmp_path)
        assert main([str(dirty)]) == 1
        (dirty / "repro" / "storage" / "bptree.py").write_text("x = 1\n")
        assert main([str(dirty)]) == 0

    def test_syntax_error_reported_as_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        assert main([str(bad)]) == 2
        out = capsys.readouterr().out
        assert "invalid syntax" in out and "error(s)" in out

    def test_missing_path_is_an_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "no-such-dir")]) == 2
        assert "path does not exist" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        dirty = self.write_dirty_tree(tmp_path)
        assert main([str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert payload["findings"][0]["rule"] == "no-raw-io"
        assert payload["findings"][0]["line"] == 1

    def test_json_rule_counts_always_list_prixrace_rules(self, tmp_path,
                                                         capsys):
        dirty = self.write_dirty_tree(tmp_path)
        assert main([str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        counts = payload["rule_counts"]
        assert counts["no-raw-io"] == 1
        # The four prixrace rules report explicitly even at zero, so
        # the CI artifact proves the concurrency checks ran.
        for rule in ("guarded-field-access", "lock-order",
                     "no-blocking-io-under-latch",
                     "release-on-all-paths"):
            assert counts[rule] == 0

    def test_json_rule_counts_include_grandfathered(self, tmp_path,
                                                    capsys):
        dirty = self.write_dirty_tree(tmp_path)
        baseline_file = tmp_path / "base.json"
        assert main([str(dirty), "--write-baseline",
                     str(baseline_file)]) == 0
        capsys.readouterr()
        assert main([str(dirty), "--baseline", str(baseline_file),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["rule_counts"]["no-raw-io"] == 1  # still counted

    def test_rules_filter_and_unknown_rule(self, tmp_path, capsys):
        dirty = self.write_dirty_tree(tmp_path)
        assert main([str(dirty), "--rules", "seeded-rng"]) == 0
        assert main([str(dirty), "--rules", "no-such-rule"]) == 2

    def test_list_rules_names_all_seventeen(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in ("no-raw-io", "seeded-rng", "stats-int-discipline",
                     "resource-safety", "no-mutable-default-arg",
                     "no-bare-except", "pin-unpin-balance",
                     "dirty-page-escape", "stats-read-before-flush",
                     "close-on-all-paths", "guarded-field-access",
                     "lock-order", "no-blocking-io-under-latch",
                     "release-on-all-paths", "layering",
                     "effect-contract", "backend-conformance"):
            assert name in out
        assert len(rules_by_name()) == 17

    def test_write_baseline_flag(self, tmp_path, capsys):
        dirty = self.write_dirty_tree(tmp_path)
        baseline_file = tmp_path / "base.json"
        assert main([str(dirty), "--write-baseline",
                     str(baseline_file)]) == 0
        assert main([str(dirty), "--baseline", str(baseline_file)]) == 0
        assert main([str(dirty), "--baseline",
                     str(tmp_path / "missing.json")]) == 2


class TestCliIntegration:
    def test_prix_lint_subcommand(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "storage" / "bptree.py"
        target.parent.mkdir(parents=True)
        target.write_text(RAW_OPEN)
        assert cli_main(["lint", str(tmp_path / "src")]) == 1
        assert "no-raw-io" in capsys.readouterr().out
        target.write_text("x = 1\n")
        assert cli_main(["lint", str(tmp_path / "src")]) == 0

    def test_prix_lint_json(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert cli_main(["lint", str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
