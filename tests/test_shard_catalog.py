"""Unit tests for the shard catalog manifest (docs/SHARDING.md).

The manifest is the shard set's superblock: a checksummed JSON file
naming every shard, its doc-id range and its generation.  These tests
pin the invariants the rest of the subsystem leans on -- sorted disjoint
ranges, checksum verification on load, atomic replace on save, and the
routing rules (``shard_for`` exact, ``route`` nearest for new ids).
"""

import json
import os

import pytest

from repro.shard import (MANIFEST_NAME, ShardCatalog, ShardCatalogError,
                         ShardEntry, ShardError, is_shard_directory)
from repro.shard.catalog import shard_file_name


def make_catalog(directory, ranges=((1, 10, 4), (11, 20, 5))):
    entries = [ShardEntry(name=f"shard-{i:04d}",
                          file=shard_file_name(i),
                          low=low, high=high, doc_count=count)
               for i, (low, high, count) in enumerate(ranges)]
    return ShardCatalog(directory=str(directory), entries=tuple(entries))


class TestEntries:
    def test_owns_is_inclusive(self):
        entry = ShardEntry(name="s", file="s.idx", low=3, high=7,
                           doc_count=5)
        assert entry.owns(3) and entry.owns(7)
        assert not entry.owns(2) and not entry.owns(8)

    def test_ranges_must_be_disjoint(self, tmp_path):
        with pytest.raises(ShardError):
            make_catalog(tmp_path, ranges=((1, 10, 4), (10, 20, 5)))

    def test_unsorted_entries_are_rejected(self, tmp_path):
        with pytest.raises(ShardError):
            make_catalog(tmp_path, ranges=((11, 20, 5), (1, 10, 4)))

    def test_replace_entries_sorts_by_low(self, tmp_path):
        catalog = make_catalog(tmp_path)
        shuffled = catalog.replace_entries(tuple(reversed(catalog.entries)))
        assert [entry.low for entry in shuffled.entries] == [1, 11]

    def test_empty_range_is_rejected(self, tmp_path):
        with pytest.raises(ShardError):
            make_catalog(tmp_path, ranges=((10, 1, 0),))


class TestRouting:
    def test_shard_for_exact_hit_and_miss(self, tmp_path):
        catalog = make_catalog(tmp_path)
        assert catalog.shard_for(1).name == "shard-0000"
        assert catalog.shard_for(20).name == "shard-0001"
        assert catalog.shard_for(99) is None

    def test_route_owns_or_nearest(self, tmp_path):
        catalog = make_catalog(tmp_path)
        # Owned ids route to the owner.
        assert catalog.route(15).name == "shard-0001"
        # New ids beyond every range route to the nearest shard, so
        # append workloads land on the last shard.
        assert catalog.route(999).name == "shard-0001"
        assert catalog.route(0).name == "shard-0000"


class TestPersistence:
    def test_round_trip(self, tmp_path):
        catalog = make_catalog(tmp_path)
        catalog.save()
        loaded = ShardCatalog.load(str(tmp_path))
        assert loaded.entries == catalog.entries
        assert loaded.generation == catalog.generation
        assert is_shard_directory(str(tmp_path))

    def test_checksum_tamper_is_detected(self, tmp_path):
        make_catalog(tmp_path).save()
        manifest = os.path.join(str(tmp_path), MANIFEST_NAME)
        with open(manifest, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["shards"][0]["doc_count"] = 999  # stale checksum now
        with open(manifest, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(ShardCatalogError):
            ShardCatalog.load(str(tmp_path))

    def test_garbage_manifest_is_detected(self, tmp_path):
        manifest = os.path.join(str(tmp_path), MANIFEST_NAME)
        with open(manifest, "w", encoding="utf-8") as handle:
            handle.write("not json {")
        with pytest.raises(ShardCatalogError):
            ShardCatalog.load(str(tmp_path))

    def test_missing_manifest_is_not_a_shard_directory(self, tmp_path):
        assert not is_shard_directory(str(tmp_path))
        with pytest.raises(ShardCatalogError):
            ShardCatalog.load(str(tmp_path))

    def test_save_is_atomic_replace(self, tmp_path):
        catalog = make_catalog(tmp_path)
        catalog.save()
        before = set(os.listdir(str(tmp_path)))
        catalog.save()
        # No temp files linger after the rename.
        assert set(os.listdir(str(tmp_path))) == before == {MANIFEST_NAME}


class TestGenerations:
    def test_next_generation_bumps_and_replaces(self, tmp_path):
        catalog = make_catalog(tmp_path)
        entries = [ShardEntry(name="shard-0000",
                              file=shard_file_name(0, generation=2),
                              low=1, high=20, doc_count=9)]
        bumped = catalog.next_generation(entries)
        assert bumped.generation == catalog.generation + 1
        assert bumped.entries[0].file == "shard-0000.g2.idx"

    def test_shard_file_name_embeds_generation(self):
        assert shard_file_name(0) == "shard-0000.idx"
        assert shard_file_name(3) == "shard-0003.idx"
        assert shard_file_name(0, generation=4) == "shard-0000.g4.idx"
