"""Workload generator tests: sampled twigs must occur in the corpus."""

import random

import pytest

from repro.baselines.naive import naive_matches
from repro.bench.generator import sample_twig
from repro.datasets import dblp, treebank
from repro.prix.index import PrixIndex


class TestSampleTwig:
    @pytest.fixture(scope="class")
    def corpus(self):
        return dblp(60).documents

    def test_sampled_twig_always_matches(self, corpus):
        rng = random.Random(1)
        index = PrixIndex.build(corpus)
        for _ in range(20):
            pattern = sample_twig(corpus, rng)
            assert len(index.query(pattern)) >= 1

    def test_matches_oracle(self, corpus):
        rng = random.Random(2)
        index = PrixIndex.build(corpus)
        for _ in range(10):
            pattern = sample_twig(corpus, rng)
            got = {(m.doc_id, m.canonical) for m in index.query(pattern)}
            want = {(d.doc_id, emb) for d in corpus
                    for emb in naive_matches(d, pattern)}
            assert got == want

    def test_varied_selectivity(self, corpus):
        rng = random.Random(3)
        index = PrixIndex.build(corpus)
        counts = {len(index.query(sample_twig(corpus, rng)))
                  for _ in range(30)}
        assert len(counts) >= 5  # genuinely varied cardinalities

    def test_deep_corpus(self):
        docs = treebank(30).documents
        rng = random.Random(4)
        index = PrixIndex.build(docs)
        for _ in range(10):
            pattern = sample_twig(docs, rng)
            assert len(index.query(pattern)) >= 1

    def test_deterministic_given_rng(self, corpus):
        first = sample_twig(corpus, random.Random(7)).nodes()
        second = sample_twig(corpus, random.Random(7)).nodes()
        assert [(n.label, n.axis, n.is_value) for n in first] == \
            [(n.label, n.axis, n.is_value) for n in second]
