"""Runtime sanitizer tests: enable/disable, both checks, env activation.

These tests intentionally commit the protocol violations the sanitizer
exists to catch (pins outliving close, snapshots while dirty), so the
static twin rules are opted out where they would fire:

# prixlint: disable-file=pin-unpin-balance
"""

import os
import subprocess
import sys
import threading

import pytest

from repro.analysis import sanitizer
from repro.storage.buffer_pool import BufferPool
from repro.storage.errors import PinProtocolError
from repro.storage.pager import Pager


@pytest.fixture(autouse=True)
def _start_disabled():
    # Under PRIX_SANITIZE=1 the sanitizer is already on at import; these
    # tests exercise the transitions themselves, so normalize to "off"
    # and restore the ambient state afterwards.
    was_active = sanitizer.active()
    if was_active:
        sanitizer.disable()
    yield
    if sanitizer.active() is not was_active:
        if was_active:
            sanitizer.enable()
        else:
            sanitizer.disable()


@pytest.fixture
def sanitized():
    sanitizer.enable()
    try:
        yield
    finally:
        sanitizer.disable()


def make_pool(capacity=4):
    pager = Pager.in_memory(page_size=32)
    return BufferPool(pager, capacity=capacity)


class TestLifecycle:
    def test_enable_disable_restores_methods(self):
        original_close = BufferPool.close
        original_snapshot = type(make_pool().stats).snapshot
        sanitizer.enable()
        try:
            assert sanitizer.active()
            assert BufferPool.close is not original_close
        finally:
            sanitizer.disable()
        assert not sanitizer.active()
        assert BufferPool.close is original_close
        assert type(make_pool().stats).snapshot is original_snapshot

    def test_enable_is_idempotent(self):
        sanitizer.enable()
        saved_close = BufferPool.close
        sanitizer.enable()
        try:
            assert BufferPool.close is saved_close
        finally:
            sanitizer.disable()

    def test_sanitized_context_manager(self):
        assert not sanitizer.active()
        with sanitizer.sanitized():
            assert sanitizer.active()
        assert not sanitizer.active()

    def test_sanitized_nested_keeps_outer_active(self):
        with sanitizer.sanitized():
            with sanitizer.sanitized():
                pass
            assert sanitizer.active()
        assert not sanitizer.active()


class TestPinBalanceAtClose:
    def test_close_with_outstanding_pin_raises(self, sanitized):
        pool = make_pool()
        pid, _ = pool.new_page()
        pool.pin(pid)
        with pytest.raises(PinProtocolError):
            pool.close()
        pool.unpin(pid)
        pool.close()

    def test_close_without_pins_passes(self, sanitized):
        pool = make_pool()
        pool.new_page()
        pool.close()

    def test_without_sanitizer_close_does_not_check(self):
        pool = make_pool()
        pid, _ = pool.new_page()
        pool.pin(pid)
        pool.close()  # no assertion without the sanitizer
        pool.unpin(pid)


class TestFlushBeforeStats:
    def test_snapshot_while_dirty_raises(self, sanitized):
        pool = make_pool()
        pool.new_page()
        with pytest.raises(sanitizer.SanitizeError):
            pool.stats.snapshot()  # prixlint: disable=stats-read-before-flush

    def test_snapshot_after_flush_passes(self, sanitized):
        pool = make_pool()
        pool.new_page()
        pool.flush()
        snap = pool.stats.snapshot()
        assert snap.allocations == 1

    def test_unrelated_stats_object_unaffected(self, sanitized):
        from repro.storage.stats import IOStats
        pool = make_pool()
        pool.new_page()  # dirty, but on its own stats object
        other = IOStats(physical_reads=3)
        assert other.snapshot().physical_reads == 3

    def test_sanitize_error_is_assertion_error(self):
        assert issubclass(sanitizer.SanitizeError, AssertionError)


class TestWalOrdering:
    """The sanitizer's third check: no page image may reach the pager
    ahead of the write-ahead log (and never while uncommitted)."""

    def make_durable_pool(self):
        import io

        from repro.storage.wal import SYNC_NEVER, WriteAheadLog
        pool = make_pool()
        wal = WriteAheadLog(io.BytesIO(), 32, sync_policy=SYNC_NEVER)
        pool.attach_wal(wal)
        return pool

    def test_uncommitted_steal_raises(self, sanitized):
        pool = self.make_durable_pool()
        pid, frame = pool.new_page()
        with pytest.raises(sanitizer.SanitizeError):
            pool._pager.write(pid, bytes(frame))

    def test_unsynced_commit_raises(self, sanitized):
        pool = self.make_durable_pool()
        pid, frame = pool.new_page()
        pool.commit()  # logged, but SYNC_NEVER: nothing durable yet
        with pytest.raises(sanitizer.SanitizeError):
            pool._pager.write(pid, bytes(frame))

    def test_synced_commit_passes(self, sanitized):
        pool = self.make_durable_pool()
        pid, frame = pool.new_page()
        pool.commit()
        pool.wal.sync()
        pool._pager.write(pid, bytes(frame))
        pool.close()

    def test_non_durable_pool_unaffected(self, sanitized):
        pool = make_pool()
        pid, frame = pool.new_page()
        pool._pager.write(pid, bytes(frame))
        pool.close()


class TestEnvActivation:
    def _run(self, env_value):
        env = dict(os.environ)
        env.pop("PRIX_SANITIZE", None)
        if env_value is not None:
            env["PRIX_SANITIZE"] = env_value
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        code = ("import repro\n"
                "from repro.analysis import sanitizer\n"
                "print(sanitizer.active())\n")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        return out.stdout.strip()

    def test_prix_sanitize_1_enables_on_import(self):
        assert self._run("1") == "True"

    def test_prix_sanitize_0_and_unset_stay_off(self):
        assert self._run("0") == "False"
        assert self._run(None) == "False"


class TestGuardedFieldDescriptors:
    """Dynamic guarded-field-access: silent while thread-confined,
    loud the moment a second thread touches the object unlatched."""

    def test_thread_confined_unlatched_access_passes(self, sanitized):
        pool = make_pool()
        pid, _ = pool.new_page()
        assert pid in pool._frames  # one thread: Eraser refinement

    def run_in_thread(self, target):
        errors = []

        def wrapped():
            try:
                target()
            except sanitizer.SanitizeError as error:
                errors.append(error)

        thread = threading.Thread(target=wrapped, name="second-toucher")
        thread.start()
        thread.join()
        return errors

    def test_shared_unlatched_access_trips_in_second_thread(self,
                                                            sanitized):
        pool = make_pool()
        pid, _ = pool.new_page()
        errors = self.run_in_thread(lambda: pool._frames.get(pid))
        assert len(errors) == 1
        assert "BufferPool._frames" in str(errors[0])
        assert "second-toucher" in str(errors[0])

    def test_shared_latched_access_passes(self, sanitized):
        pool = make_pool()
        pid, _ = pool.new_page()

        def latched_read():
            with pool._latch:
                pool._frames.get(pid)

        assert self.run_in_thread(latched_read) == []

    def test_public_api_is_race_free_across_threads(self, sanitized):
        # The real protocol: a second thread going through get() takes
        # the latch internally, so nothing trips.
        pool = make_pool()
        pid, _ = pool.new_page()
        pool.flush()
        assert self.run_in_thread(lambda: pool.get(pid)) == []

    def test_descriptors_removed_on_disable(self):
        with sanitizer.sanitized():
            assert "_frames" in BufferPool.__dict__  # descriptor installed
        assert "_frames" not in BufferPool.__dict__


class TestThreadLocalState:
    """Satellite: sanitizer state is per-thread where it must be (held
    stacks) and process-wide where it must be (pool registry, order
    graph)."""

    def test_held_stacks_are_thread_local(self, sanitized):
        from repro.storage.latch import Latch
        latch = Latch("tl-test")
        latch.acquire()
        try:
            other = []
            thread = threading.Thread(
                target=lambda: other.append(
                    list(sanitizer._state.tls.held)))
            thread.start()
            thread.join()
            assert other == [[]]  # fresh stack in the new thread
            assert "tl-test" in sanitizer._state.tls.held
        finally:
            latch.release()
        assert "tl-test" not in sanitizer._state.tls.held

    def test_order_graph_is_process_wide(self, sanitized):
        from repro.storage.latch import Latch
        a, b = Latch("tl-a"), Latch("tl-b")

        def nest_ab():
            with a:
                with b:
                    pass

        thread = threading.Thread(target=nest_ab)
        thread.start()
        thread.join()
        # The main thread now observes the edge the worker created.
        with sanitizer._state.meta:
            assert "tl-b" in sanitizer._state.order.get("tl-a", set())


class TestRuntimeLockOrder:
    """Dynamic lock-order: the cycle is raised on the acquire that
    would close it, before blocking -- no two threads needed."""

    def test_opposite_nesting_raises_before_deadlock(self, sanitized):
        from eviltwin_pool import EvilPool
        pool = EvilPool(pager=None)
        pool.take_frames_then_order()
        with pytest.raises(sanitizer.SanitizeError) as excinfo:
            pool.take_order_then_frames()
        assert "cycle" in str(excinfo.value)
        assert "evil-frames" in str(excinfo.value)

    def test_consistent_order_is_silent(self, sanitized):
        from eviltwin_pool import EvilPool
        pool = EvilPool(pager=None)
        assert pool.take_frames_then_order() == 0
        assert pool.take_frames_then_order() == 0

    def test_reentrant_acquire_is_silent(self, sanitized):
        from repro.storage.latch import Latch
        latch = Latch("re-entrant")
        with latch:
            with latch:
                pass

    def test_storage_layer_order_is_acyclic(self, sanitized):
        # Drive the real pool through its paces; the hooks observe
        # buffer-pool -> io-stats and pager-io -> io-stats, never a
        # cycle.
        pool = make_pool(capacity=2)
        pids = [pool.new_page()[0] for _ in range(4)]
        pool.flush()
        for pid in pids:
            pool.get(pid)
        pool.close()


class TestEvilBufferPoolRuntime:
    def test_latch_bypassing_get_trips_when_shared(self, sanitized):
        from eviltwin_pool import EvilBufferPool
        pool = EvilBufferPool(Pager.in_memory(page_size=32), capacity=4)
        pid, _ = pool.new_page()
        pool.flush()
        pool.get(pid)  # still thread-confined: silent
        errors = []

        def racy_get():
            try:
                pool.get(pid)
            except sanitizer.SanitizeError as error:
                errors.append(error)

        thread = threading.Thread(target=racy_get, name="evil-reader")
        thread.start()
        thread.join()
        assert len(errors) == 1
        assert "BufferPool._frames" in str(errors[0])


class TestGuardTrust:
    def make_guarded_pool(self):
        import io
        from repro.storage.guard import PageGuard
        guard = PageGuard(io.BytesIO(), 32)
        pager = Pager.in_memory(page_size=32, guard=guard)
        return BufferPool(pager, capacity=4), guard

    def test_verified_image_passes(self, sanitized):
        pool, guard = self.make_guarded_pool()
        pid = pool._pager.allocate()
        pool.put(pid, b"\x11" * 32)
        pool.flush()
        assert bytes(pool.get(pid)) == b"\x11" * 32
        pool.close()

    def test_untrusted_cached_image_trips(self, sanitized):
        # A cache hit bypasses guard.admit(); if trust was revoked in
        # the meantime (e.g. a quarantine through another handle), the
        # sanitizer must refuse to hand the stale frame out.
        pool, guard = self.make_guarded_pool()
        pid = pool._pager.allocate()
        pool.put(pid, b"\x11" * 32)
        pool.flush()
        pool.get(pid)
        guard._trusted.discard(pid)
        with pytest.raises(sanitizer.SanitizeError):
            pool.get(pid)

    def test_unguarded_pool_unaffected(self, sanitized):
        pool = make_pool()
        pid, frame = pool.new_page()
        pool.get(pid)
        pool.close()
