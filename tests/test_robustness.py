"""Robustness fuzzing: hostile inputs fail cleanly, never crash oddly.

The tokenizer, parser and XPath parser must reject malformed input with
their documented exception types -- never hang, never raise an
unexpected error class -- and the index build must handle degenerate
document shapes.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prix.index import PrixIndex
from repro.query.xpath import XPathSyntaxError, parse_xpath
from repro.xmlkit.errors import XMLSyntaxError
from repro.xmlkit.parser import parse_document
from repro.xmlkit.tokenizer import tokenize
from repro.xmlkit.tree import Document, XMLNode, element


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=120))
def test_tokenizer_never_crashes_unexpectedly(text):
    try:
        list(tokenize(text))
    except XMLSyntaxError:
        pass


@settings(max_examples=300, deadline=None)
@given(st.text(alphabet="<>/abc&;\"'= \n![]-?", max_size=80))
def test_tokenizer_markup_soup(text):
    try:
        list(tokenize(text))
    except XMLSyntaxError:
        pass


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=100))
def test_parser_never_crashes_unexpectedly(text):
    try:
        parse_document(text)
    except XMLSyntaxError:
        pass


@settings(max_examples=300, deadline=None)
@given(st.text(alphabet="/[]*=.\"'aZb_1 @()", max_size=60))
def test_xpath_parser_never_crashes_unexpectedly(query):
    try:
        parse_xpath(query)
    except (XPathSyntaxError, ValueError):
        pass


class TestDegenerateDocuments:
    def test_single_node_corpus(self):
        index = PrixIndex.build([Document(element("only"), doc_id=1)])
        # A one-node document can never contain a (>=2 node) twig.
        assert index.query("//only/x") == []

    def test_very_deep_document(self):
        root = element("d")
        node = root
        for _ in range(3000):
            node = node.append(element("d"))
        index = PrixIndex.build([Document(root, doc_id=1)])
        matches = index.query("//d/d/d")
        assert len(matches) == 2999

    def test_very_wide_document(self):
        root = element("w")
        for _ in range(5000):
            root.append(element("c"))
        index = PrixIndex.build([Document(root, doc_id=1)])
        assert len(index.query("//w/c")) == 5000

    def test_unicode_tags_and_values(self):
        text = "<répertoire><naïve>早安 — ¡hola!</naïve></répertoire>"
        document = parse_document(text, 1)
        index = PrixIndex.build([document])
        matches = index.query('//naïve[text()="早安 — ¡hola!"]')
        assert len(matches) == 1

    def test_identical_documents(self):
        docs = [parse_document("<a><b/></a>", doc_id=i + 1)
                for i in range(50)]
        index = PrixIndex.build(docs)
        assert len(index.query("//a/b")) == 50
        assert index.trie_stats("rp").max_path_sharing == 50

    def test_long_text_values(self):
        blob = "x" * 20000
        document = parse_document(f"<a><b>{blob}</b></a>", 1)
        index = PrixIndex.build([document])
        assert len(index.query(f'//a[./b="{blob}"]')) == 1


class TestQueryEdgeCases:
    @pytest.fixture(scope="class")
    def index(self):
        return PrixIndex.build([parse_document("<a><b>x</b></a>", 1)])

    def test_label_absent_from_corpus(self, index):
        assert index.query("//zzz/yyy") == []

    def test_value_absent(self, index):
        assert index.query('//a[./b="nope"]') == []

    def test_query_deeper_than_document(self, index):
        assert index.query("//a/b/c/d/e/f") == []

    def test_root_anchored_mismatch(self, index):
        assert index.query("/b/a") == []

    def test_results_are_deterministic(self, index):
        first = [m.canonical for m in index.query("//a/b")]
        second = [m.canonical for m in index.query("//a/b")]
        assert first == second
