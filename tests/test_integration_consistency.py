"""Cross-system integration tests over realistic corpora.

These exercise the full stack: generators -> serialization -> reparse ->
index build -> all four engines, checking pairwise consistency and the
paper's qualitative claims at test scale.
"""

import pytest

from repro.baselines.naive import naive_matches
from repro.baselines.region import StreamSet, build_stream_entries
from repro.baselines.twigstack import twig_stack
from repro.baselines.twigstackxb import XBForest, twig_stack_xb
from repro.baselines.vist import VistIndex
from repro.datasets import dblp, treebank
from repro.prix.index import IndexOptions, PrixIndex
from repro.query.xpath import parse_xpath
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serializer import serialize

EXTRA_QUERIES = {
    "dblp": ["//inproceedings/author", "//article[./volume]/year",
             '//inproceedings[./booktitle="VLDB"]/title',
             "//www//url", "/inproceedings/title"],
    "treebank": ["//S/NP", "//NP//NN", "//VP[./NP]", "//S//S",
                 "//PP/NP/NN"],
}


@pytest.fixture(scope="module")
def reparsed_dblp():
    """The corpus serialized to XML text and re-parsed: the full pipeline
    a downstream user would run."""
    corpus = dblp(80)
    return [parse_document(serialize(doc), doc.doc_id)
            for doc in corpus.documents]


class TestSerializeReparseIndex:
    def test_reparsed_corpus_queries_identically(self, reparsed_dblp):
        original = dblp(80).documents
        index_original = PrixIndex.build(original)
        index_reparsed = PrixIndex.build(reparsed_dblp)
        for xpath in EXTRA_QUERIES["dblp"]:
            first = {(m.doc_id, m.canonical)
                     for m in index_original.query(xpath)}
            second = {(m.doc_id, m.canonical)
                      for m in index_reparsed.query(xpath)}
            assert first == second, xpath


@pytest.mark.parametrize("corpus_name", ["dblp", "treebank"])
def test_four_way_consistency(corpus_name):
    corpus = (dblp(60) if corpus_name == "dblp" else treebank(50))
    docs = corpus.documents
    prix = PrixIndex.build(docs)
    stream_pool = BufferPool(Pager.in_memory())
    streams = StreamSet.build(docs, stream_pool)
    xb_pool = BufferPool(Pager.in_memory())
    forest = XBForest.build(build_stream_entries(docs), xb_pool)
    vist_pool = BufferPool(Pager.in_memory())
    vist = VistIndex.build(docs, vist_pool)

    for xpath in EXTRA_QUERIES[corpus_name]:
        pattern = parse_xpath(xpath)
        oracle = {(d.doc_id, emb) for d in docs
                  for emb in naive_matches(d, pattern)}
        xpath_oracle = {(d.doc_id, emb) for d in docs
                        for emb in naive_matches(d, pattern,
                                                 semantics="xpath")}
        got_prix = {(m.doc_id, m.canonical) for m in prix.query(pattern)}
        assert got_prix == oracle, xpath
        got_ts, _ = twig_stack(pattern, streams)
        got_xb, _ = twig_stack_xb(pattern, forest)
        assert got_ts == xpath_oracle, xpath
        assert got_xb == xpath_oracle, xpath
        vist_docs, _ = vist.query(pattern)
        assert vist_docs >= {doc_id for doc_id, _ in oracle}, xpath


class TestQualitativeClaims:
    """The paper's headline behaviours, asserted at test scale."""

    def test_prix_has_no_false_alarms_where_vist_does(self, fig1_docs):
        doc1, doc2 = fig1_docs
        from repro.datasets import figure1_query
        query = figure1_query()
        prix = PrixIndex.build([doc1, doc2])
        vist_pool = BufferPool(Pager.in_memory())
        vist = VistIndex.build([doc1, doc2], vist_pool)
        prix_docs = {m.doc_id for m in prix.query(query)}
        vist_docs, _ = vist.query(query)
        assert prix_docs == {1}
        assert vist_docs == {1, 2}

    def test_index_size_linear_in_nodes(self):
        """PRIX's worst-case bound: total trie nodes never exceed total
        sequence length (= total tree nodes)."""
        corpus = dblp(100)
        index = PrixIndex.build(corpus.documents)
        total_nodes = sum(doc.size for doc in corpus.documents)
        for variant in index.variants():
            stats = index.trie_stats(variant)
            assert stats.node_count <= 2 * total_nodes

    def test_trie_sharing_on_similar_documents(self):
        """Section 6.4.2: similar DBLP structure shares trie paths."""
        corpus = dblp(300)
        index = PrixIndex.build(corpus.documents)
        stats = index.trie_stats("rp")
        assert stats.max_path_sharing > 10
        assert stats.node_count < stats.total_sequence_length / 4

    def test_bottom_up_beats_vist_on_recursion(self):
        """Q7-style wildcard query over recursive tags: PRIX issues far
        fewer range queries than ViST (Section 6.4.1)."""
        corpus = treebank(80)
        prix = PrixIndex.build(corpus.documents)
        vist_pool = BufferPool(Pager.in_memory())
        vist = VistIndex.build(corpus.documents, vist_pool)
        pattern = parse_xpath("//S//NP/SYM")
        _, prix_stats = prix.query_with_stats(pattern, variant="rp")
        _, vist_stats = vist.query(pattern)
        assert prix_stats.filter.range_queries < vist_stats.range_queries

    def test_ep_index_prunes_value_queries(self):
        """Section 5.6: EPIndex explores fewer trie paths than RPIndex
        for highly selective value queries."""
        corpus = dblp(200)
        index = PrixIndex.build(corpus.documents)
        pattern = parse_xpath('//title[text()="Semantic Analysis Patterns"]')
        _, ep_stats = index.query_with_stats(pattern, variant="ep")
        _, rp_stats = index.query_with_stats(pattern, variant="rp")
        assert ep_stats.filter.nodes_visited <= rp_stats.filter.nodes_visited
