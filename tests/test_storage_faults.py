"""Fault-injection model tests: determinism, the volatile/durable split,
and the crash kinds.

These pin down the *model* the crash matrix relies on; if FaultyFile
ever let a non-fsynced byte survive a crash, the matrix would pass
without testing anything.
"""

import pytest

from repro.storage.faults import (KIND_AT_FSYNC, KIND_BEFORE_WRITE,
                                  KIND_DROPPED_FSYNC, KIND_TORN_WRITE,
                                  CrashPoint, FaultSchedule, FaultyFile)


def clean_file(seed=1, **kwargs):
    return FaultyFile(FaultSchedule(seed), **kwargs)


class TestVolatileDurableSplit:
    def test_write_is_volatile_until_fsync(self):
        f = clean_file()
        f.write(b"hello")
        assert f.durable_bytes() == b""
        f.fsync()
        assert f.durable_bytes() == b"hello"

    def test_reads_see_volatile_state(self):
        f = clean_file()
        f.write(b"abcdef")
        f.seek(2)
        assert f.read(3) == b"cde"

    def test_overwrite_mid_file(self):
        f = clean_file()
        f.write(b"aaaa")
        f.seek(1)
        f.write(b"XY")
        f.seek(0)
        assert f.read() == b"aXYa"

    def test_truncate_drops_volatile_tail(self):
        f = clean_file()
        f.write(b"abcdef")
        f.truncate(2)
        f.seek(0)
        assert f.read() == b"ab"

    def test_seek_past_end_zero_fills(self):
        f = clean_file()
        f.seek(3)
        f.write(b"x")
        f.seek(0)
        assert f.read() == b"\x00\x00\x00x"

    def test_reopen_durable_ignores_later_writes(self):
        f = clean_file()
        f.write(b"committed")
        f.fsync()
        f.write(b"-lost")
        assert f.reopen_durable().read() == b"committed"


class TestDeterminism:
    def test_same_seed_same_faults(self):
        def run(seed):
            schedule = FaultSchedule(seed, crash_at=4)
            f = FaultyFile(schedule, "f")
            kinds = []
            try:
                for i in range(10):
                    f.write(bytes([i]) * 8)
            except CrashPoint as crash:
                kinds.append((crash.op_index, crash.kind))
            return kinds, f.durable_bytes()

        assert run(7) == run(7)

    def test_different_seeds_vary_kinds(self):
        kinds = set()
        for seed in range(30):
            schedule = FaultSchedule(seed, crash_at=0)
            with pytest.raises(CrashPoint) as err:
                FaultyFile(schedule, "f").write(b"payload-bytes")
            kinds.add(err.value.kind)
        assert KIND_BEFORE_WRITE in kinds
        assert KIND_TORN_WRITE in kinds

    def test_describe_is_a_repro_recipe(self):
        schedule = FaultSchedule(3, crash_at=9, drop_fsyncs=False)
        recipe = schedule.describe()
        assert recipe["seed"] == 3
        assert recipe["crash_at"] == 9
        assert recipe["drop_fsyncs"] is False


class TestCrashKinds:
    def test_torn_write_persists_prefix_only(self):
        # Find a seed whose op-0 fault is a torn write, then check the
        # volatile image holds a strict prefix of the payload.
        found = None
        for seed in range(100):
            schedule = FaultSchedule(seed, crash_at=0)
            f = FaultyFile(schedule, "f")
            try:
                f.write(b"0123456789")
            except CrashPoint as crash:
                if crash.kind == KIND_TORN_WRITE:
                    found = f
                    break
        assert found is not None
        found.seek(0)
        volatile = found.read()
        assert b"0123456789".startswith(volatile)
        assert volatile != b"0123456789"

    def test_crash_at_fsync_keeps_durable_old(self):
        found = None
        for seed in range(100):
            schedule = FaultSchedule(seed, crash_at=1)
            f = FaultyFile(schedule, "f")
            try:
                f.write(b"new-bytes")      # op 0
                f.fsync()                  # op 1 -> crash
            except CrashPoint as crash:
                if crash.kind == KIND_AT_FSYNC:
                    found = f
                    break
        assert found is not None
        assert found.durable_bytes() == b""

    def test_dropped_fsync_is_silent_and_moves_nothing(self):
        dropped = None
        for seed in range(100):
            schedule = FaultSchedule(seed)
            if schedule.fsync_fault(0) == KIND_DROPPED_FSYNC:
                dropped = seed
                break
        assert dropped is not None
        schedule = FaultSchedule(dropped)
        f = FaultyFile(schedule, "f")
        # Op counter at 0: the first op must be the droppable fsync.
        f.fsync()
        assert f.durable_bytes() == b""  # silently did nothing

    def test_undroppable_fsync_never_drops(self):
        for seed in range(100):
            schedule = FaultSchedule(seed)
            assert schedule.fsync_fault(0, droppable=False) is None

    def test_wal_file_fsyncs_always_honest(self):
        for seed in range(20):
            schedule = FaultSchedule(seed)
            f = FaultyFile(schedule, "wal", droppable_fsync=False)
            for i in range(20):
                f.write(bytes([i]))
                f.fsync()
                f.seek(0)
                assert f.durable_bytes() == f.read()

    def test_crash_remembers_itself(self):
        schedule = FaultSchedule(1, crash_at=0)
        f = FaultyFile(schedule, "data")
        with pytest.raises(CrashPoint):
            f.write(b"x")
        assert schedule.crashed is not None
        assert schedule.crashed.op_index == 0


class TestSharedCounter:
    def test_two_files_share_one_op_stream(self):
        schedule = FaultSchedule(5, crash_at=2)
        a = FaultyFile(schedule, "a")
        b = FaultyFile(schedule, "b")
        a.write(b"1")     # op 0
        b.write(b"2")     # op 1
        with pytest.raises(CrashPoint) as err:
            a.write(b"3")  # op 2 -> crash
        assert err.value.op_index == 2
        assert err.value.name == "a"

    def test_recording_run_counts_ops(self):
        schedule = FaultSchedule(5, crash_at=None)
        f = FaultyFile(schedule, "f")
        for i in range(7):
            f.write(b"x")
        f.fsync()
        assert schedule.ops == 8
        assert schedule.crashed is None
