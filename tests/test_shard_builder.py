"""Unit tests for the parallel shard builder (docs/SHARDING.md).

The builder's contract is determinism: the partition is a pure function
of the doc-id set, each shard's RNG stream is seeded from (corpus seed,
ordinal), and the bytes on disk are independent of the worker count --
a ``--workers 4`` build is ``filecmp``-identical to a serial one.
"""

import filecmp
import os

import pytest

from repro.datasets import dblp
from repro.prix.index import IndexOptions
from repro.shard import (ShardCatalog, ShardError, build_shards,
                         partition_documents)
from repro.shard.builder import shard_seed


@pytest.fixture(scope="module")
def corpus():
    return dblp(n_records=24, seed=11).documents


class TestPartition:
    def test_covers_all_docs_disjointly(self, corpus):
        chunks = partition_documents(corpus, 4)
        ids = [doc.doc_id for chunk in chunks for doc in chunk]
        assert sorted(ids) == sorted(doc.doc_id for doc in corpus)
        assert len(set(ids)) == len(ids)

    def test_chunks_are_contiguous_and_near_equal(self, corpus):
        chunks = partition_documents(corpus, 5)
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1
        # Contiguous by doc id: every chunk's max is below the next
        # chunk's min.
        for left, right in zip(chunks, chunks[1:]):
            assert max(d.doc_id for d in left) < min(d.doc_id
                                                     for d in right)

    def test_partition_is_input_order_independent(self, corpus):
        forward = partition_documents(corpus, 3)
        backward = partition_documents(list(reversed(corpus)), 3)
        key = lambda chunks: [[d.doc_id for d in c] for c in chunks]
        assert key(forward) == key(backward)

    def test_rejects_bad_shapes(self, corpus):
        with pytest.raises(ShardError):
            partition_documents(corpus, 0)
        with pytest.raises(ShardError):
            partition_documents(corpus, len(corpus) + 1)
        with pytest.raises(ShardError):
            partition_documents(corpus + [corpus[0]], 2)  # dup id

    def test_seeds_are_distinct_and_stable(self):
        seeds = [shard_seed(20040301, ordinal) for ordinal in range(16)]
        assert len(set(seeds)) == 16
        assert seeds == [shard_seed(20040301, ordinal)
                         for ordinal in range(16)]


class TestBuild:
    def test_build_writes_manifest_and_shards(self, corpus, tmp_path):
        target = str(tmp_path / "shards")
        report = build_shards(corpus, target, shards=3)
        assert report.doc_count == len(corpus)
        assert len(report.shards) == 3
        catalog = ShardCatalog.load(target)
        assert catalog.generation == 1
        assert [entry.doc_count for entry in catalog.entries] == \
            [stats.doc_count for stats in report.shards]
        for entry in catalog.entries:
            assert os.path.exists(catalog.path_for(entry))

    def test_existing_manifest_needs_overwrite(self, corpus, tmp_path):
        target = str(tmp_path / "shards")
        build_shards(corpus, target, shards=2)
        with pytest.raises(ShardError):
            build_shards(corpus, target, shards=2)
        build_shards(corpus, target, shards=2, overwrite=True)

    def test_parallel_build_is_byte_identical(self, corpus, tmp_path):
        serial = str(tmp_path / "serial")
        parallel = str(tmp_path / "parallel")
        build_shards(corpus, serial, shards=4, workers=1)
        build_shards(corpus, parallel, shards=4, workers=4)
        names = sorted(os.listdir(serial))
        assert names == sorted(os.listdir(parallel))
        for name in names:
            assert filecmp.cmp(os.path.join(serial, name),
                               os.path.join(parallel, name),
                               shallow=False), f"{name} differs"

    def test_file_factory_cannot_cross_processes(self, corpus, tmp_path):
        options = IndexOptions(file_factory=open)
        with pytest.raises(ShardError):
            build_shards(corpus, str(tmp_path / "s"), shards=2,
                         workers=2, options=options)
