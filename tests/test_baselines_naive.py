"""Oracle self-tests: semantics of the exhaustive matcher."""

from repro.baselines.naive import (label_histogram, naive_match_count,
                                   naive_matches)
from repro.query.xpath import parse_xpath
from repro.xmlkit.parser import parse_document


def doc(text, doc_id=1):
    return parse_document(text, doc_id)


class TestBasicMatching:
    def test_child_axis(self):
        document = doc("<a><b/><c><b/></c></a>")
        assert len(naive_matches(document, parse_xpath("//a/b"))) == 1

    def test_descendant_axis(self):
        document = doc("<a><b/><c><b/></c></a>")
        assert len(naive_matches(document, parse_xpath("//a//b"))) == 2

    def test_absolute_anchoring(self):
        document = doc("<a><a><b/></a></a>")
        assert len(naive_matches(document, parse_xpath("/a/b"))) == 0
        assert len(naive_matches(document, parse_xpath("/a/a/b"))) == 1
        assert len(naive_matches(document, parse_xpath("//a/b"))) == 1

    def test_value_matching(self):
        document = doc("<a><b>x</b><b>y</b></a>")
        assert len(naive_matches(document,
                                 parse_xpath('//b[text()="x"]'))) == 1

    def test_value_does_not_match_element(self):
        document = doc("<a><b><x/></b></a>")
        assert len(naive_matches(document,
                                 parse_xpath('//b[text()="x"]'))) == 0

    def test_star_matches_elements_only(self):
        document = doc("<a><b/>text</a>")
        assert len(naive_matches(document, parse_xpath("//a/*"))) == 1


class TestPrixSemantics:
    def test_branches_must_use_distinct_subtrees(self):
        # d[.//c][./b] where c sits inside b: not an LCA-preserving match.
        document = doc("<d><b><c/></b></d>")
        pattern = parse_xpath("//d[.//c][./b]")
        assert len(naive_matches(document, pattern)) == 0
        assert len(naive_matches(document, pattern,
                                 semantics="xpath")) == 1

    def test_injectivity(self):
        # a[./b][./b] on a single b: PRIX needs two distinct b's.
        document = doc("<a><b/></a>")
        pattern = parse_xpath("//a[./b][./b]")
        assert len(naive_matches(document, pattern)) == 0
        document2 = doc("<a><b/><b/></a>")
        assert len(naive_matches(document2, pattern)) == 1

    def test_identical_branches_counted_once(self):
        document = doc("<a><b/><b/></a>")
        pattern = parse_xpath("//a[./b][./b]")
        # One occurrence (the unordered pair), not two assignments.
        assert len(naive_matches(document, pattern)) == 1

    def test_star_exists_but_not_reported(self):
        document = doc("<a><b/><c/></a>")
        pattern = parse_xpath("//a/*")
        matches = naive_matches(document, pattern)
        # Two children satisfy the star, but the reported embedding maps
        # only the named root, so there is one distinct occurrence.
        assert len(matches) == 1
        (embedding,) = matches
        assert len(embedding) == 1


class TestOrderedSemantics:
    def test_branch_order_respected(self):
        document = doc("<a><b/><c/></a>")
        assert len(naive_matches(document, parse_xpath("//a[./b]/c"),
                                 ordered=True)) == 1
        assert len(naive_matches(document, parse_xpath("//a[./c]/b"),
                                 ordered=True)) == 0

    def test_ordered_subset(self):
        document = doc("<a><c/><b/><c/></a>")
        pattern = parse_xpath("//a[./b]/c")
        ordered = naive_matches(document, pattern, ordered=True)
        unordered = naive_matches(document, pattern)
        assert ordered <= unordered
        assert len(unordered) == 2
        assert len(ordered) == 1


class TestHelpers:
    def test_match_count_sums_documents(self):
        docs = [doc("<a><b/></a>", 1), doc("<a><b/><b/></a>", 2)]
        assert naive_match_count(docs, parse_xpath("//a/b")) == 3

    def test_label_histogram(self):
        docs = [doc("<a><b/>x</a>", 1)]
        histogram = label_histogram(docs)
        assert histogram["a"] == 1
        assert histogram["b"] == 1
        assert histogram["\x1fx"] == 1
