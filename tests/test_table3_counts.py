"""Table 3 reproduction at test scale: every engine agrees on Q1-Q9.

The paper's Table 3 reports one match count per query; here the PRIX
engine (both variants), the naive oracle, TwigStack and TwigStackXB must
all agree on our synthetic corpora, and ViST's candidate documents must
cover the true documents.
"""

import pytest

from repro.baselines.naive import naive_matches
from repro.baselines.region import StreamSet, build_stream_entries
from repro.baselines.twigstack import twig_stack
from repro.baselines.twigstackxb import XBForest, twig_stack_xb
from repro.baselines.vist import VistIndex
from repro.bench.workloads import QUERIES, queries_for
from repro.prix.index import PrixIndex
from repro.query.xpath import parse_xpath
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager


@pytest.fixture(scope="module")
def corpora(tiny_dblp, tiny_swissprot, tiny_treebank):
    return {"dblp": tiny_dblp, "swissprot": tiny_swissprot,
            "treebank": tiny_treebank}


@pytest.fixture(scope="module")
def systems(corpora):
    built = {}
    for name, corpus in corpora.items():
        docs = corpus.documents
        prix = PrixIndex.build(docs)
        stream_pool = BufferPool(Pager.in_memory())
        streams = StreamSet.build(docs, stream_pool)
        xb_pool = BufferPool(Pager.in_memory())
        forest = XBForest.build(build_stream_entries(docs), xb_pool)
        vist_pool = BufferPool(Pager.in_memory())
        vist = VistIndex.build(docs, vist_pool)
        built[name] = (prix, streams, forest, vist)
    return built


@pytest.mark.parametrize("spec", QUERIES, ids=[s.qid for s in QUERIES])
def test_all_systems_agree(spec, corpora, systems):
    docs = corpora[spec.corpus].documents
    prix, streams, forest, vist = systems[spec.corpus]
    pattern = parse_xpath(spec.xpath)

    oracle = {(d.doc_id, emb) for d in docs
              for emb in naive_matches(d, pattern)}

    prix_rp = {(m.doc_id, m.canonical)
               for m in prix.query(pattern, variant="rp")}
    prix_ep = {(m.doc_id, m.canonical)
               for m in prix.query(pattern, variant="ep")}
    assert prix_rp == oracle, f"{spec.qid}: RPIndex diverges from oracle"
    assert prix_ep == oracle, f"{spec.qid}: EPIndex diverges from oracle"

    # The Table 3 queries have no nested-branch overlaps, so the XPath
    # semantics of the stack joins coincides with PRIX's here.
    ts_matches, _ = twig_stack(pattern, streams)
    xb_matches, _ = twig_stack_xb(pattern, forest)
    assert ts_matches == oracle, f"{spec.qid}: TwigStack diverges"
    assert xb_matches == oracle, f"{spec.qid}: TwigStackXB diverges"

    vist_docs, _ = vist.query(pattern)
    true_docs = {doc_id for doc_id, _ in oracle}
    assert vist_docs >= true_docs, f"{spec.qid}: ViST false dismissal"


@pytest.mark.parametrize("spec", QUERIES, ids=[s.qid for s in QUERIES])
def test_planted_needles_found(spec, corpora, systems):
    """Each query has at least one match -- the generators planted them."""
    prix, _, _, _ = systems[spec.corpus]
    assert len(prix.query(parse_xpath(spec.xpath))) >= 1


def test_queries_for_grouping():
    assert [s.qid for s in queries_for("dblp")] == ["Q1", "Q2", "Q3"]
    assert [s.qid for s in queries_for("swissprot")] == ["Q4", "Q5", "Q6"]
    assert [s.qid for s in queries_for("treebank")] == ["Q7", "Q8", "Q9"]


def test_expected_plant_counts(corpora, systems):
    """Counts that the generators fix exactly (documented needles)."""
    prix_dblp = systems["dblp"][0]
    assert len(prix_dblp.query(parse_xpath(QUERIES[0].xpath))) == 6   # Q1
    assert len(prix_dblp.query(parse_xpath(QUERIES[2].xpath))) == 1   # Q3
    prix_swiss = systems["swissprot"][0]
    assert len(prix_swiss.query(parse_xpath(QUERIES[3].xpath))) == 3  # Q4
    assert len(prix_swiss.query(parse_xpath(QUERIES[4].xpath))) == 5  # Q5
