"""ViST baseline tests: sequences, matching, false alarms, space."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_random_tree, make_random_twig
from repro.baselines.naive import naive_matches
from repro.baselines.vist import (VistIndex, structure_encoded_sequence,
                                  total_sequence_text)
from repro.datasets import figure1_documents, figure1_query
from repro.query.xpath import parse_xpath
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.xmlkit.parser import parse_document
from repro.xmlkit.tree import Document, element


def build_index(docs):
    pool = BufferPool(Pager.in_memory())
    return VistIndex.build(docs, pool), pool


class TestStructureEncodedSequence:
    def test_preorder_symbols(self):
        doc = parse_document("<a><b><c/></b><d/></a>", 1)
        seq = structure_encoded_sequence(doc)
        assert [symbol for symbol, _ in seq] == ["a", "b", "c", "d"]

    def test_prefixes_are_root_paths(self):
        doc = parse_document("<a><b><c/></b></a>", 1)
        seq = dict(structure_encoded_sequence(doc))
        assert seq["a"] == ""
        assert seq["b"] == "a\x1e"
        assert seq["c"] == "a\x1eb\x1e"

    def test_values_in_sequence(self):
        doc = parse_document("<a>x</a>", 1)
        seq = structure_encoded_sequence(doc)
        assert seq[1][0] == "\x1fx"

    def test_quadratic_text_on_unary_tree(self):
        """Section 2's worst case: the structure-encoded sequence of a
        unary (skinny) tree is O(n^2) characters."""
        def unary(n):
            root = element("t")
            node = root
            for _ in range(n - 1):
                node = node.append(element("t"))
            return Document(root, 1)

        small = total_sequence_text(unary(20))
        large = total_sequence_text(unary(40))
        # Doubling n should far more than double the text (quadratic).
        assert large > 3.5 * small


class TestQueries:
    def test_exact_path(self):
        docs = [parse_document("<a><b><c/></b></a>", 1),
                parse_document("<a><c/></a>", 2)]
        index, _ = build_index(docs)
        found, _ = index.query(parse_xpath("/a/b/c"))
        assert found == {1}

    def test_descendant_step_scans_symbol_keys(self):
        docs = [parse_document("<a><x><b/></x></a>", 1)]
        index, _ = build_index(docs)
        found, stats = index.query(parse_xpath("//a//b"))
        assert found == {1}
        assert stats.keys_scanned > 0

    def test_value_query(self):
        docs = [parse_document("<a><b>x</b></a>", 1),
                parse_document("<a><b>y</b></a>", 2)]
        index, _ = build_index(docs)
        found, _ = index.query(parse_xpath('//b[text()="x"]'))
        assert found == {1}

    def test_star_rejected(self):
        docs = [parse_document("<a/>", 1)]
        index, _ = build_index(docs)
        with pytest.raises(NotImplementedError):
            index.query(parse_xpath("//a/*"))

    def test_ordered_flag(self):
        docs = [parse_document("<a><c/><b/></a>", 1)]
        index, _ = build_index(docs)
        unordered, _ = index.query(parse_xpath("//a[./b]/c"))
        ordered, _ = index.query(parse_xpath("//a[./b]/c"), ordered=True)
        assert unordered == {1}
        assert ordered == set()


class TestFalseAlarms:
    def test_figure1b_false_alarm(self):
        """The paper's Figure 1(b): ViST reports Doc2, a false alarm."""
        doc1, doc2 = figure1_documents()
        index, _ = build_index([doc1, doc2])
        query = figure1_query()
        found, _ = index.query(query)
        truth = {d.doc_id for d in (doc1, doc2)
                 if naive_matches(d, query, semantics="xpath")}
        assert truth == {1}
        assert found == {1, 2}  # Doc2 is the false alarm

    def test_never_false_dismissals(self):
        """ViST may over-report but must not miss documents.

        Like PRIX, ViST's sequence matching assigns distinct sequence
        positions to distinct branches, so the reference semantics is the
        injective LCA-preserving one, not plain XPath (ViST famously
        cannot represent matches that reuse one data node for two query
        branches -- the same restriction PRIX's positions impose).
        """
        rng = random.Random(77)
        for _ in range(30):
            docs = [Document(make_random_tree(rng, max_nodes=12),
                             doc_id=i + 1) for i in range(3)]
            index, _ = build_index(docs)
            pattern = make_random_twig(rng, star_p=0.0)
            truth = {d.doc_id for d in docs
                     if naive_matches(d, pattern, semantics="prix")}
            found, _ = index.query(pattern)
            assert found >= truth, pattern.nodes()


class TestWorkCounters:
    def test_wildcard_explodes_key_matches(self):
        """Deep recursive tags make ViST match many (symbol, prefix)
        keys -- the Q7/Q8 effect of Section 6.4.1."""
        root = element("S")
        node = root
        for _ in range(12):
            node = node.append(element("S"))
        node.append(element("X"))
        docs = [Document(root, 1)]
        index, _ = build_index(docs)
        found, stats = index.query(parse_xpath("//S//X"))
        assert found == {1}
        # Every S depth contributes a distinct (S, prefix) key.
        assert stats.matching_keys >= 13
