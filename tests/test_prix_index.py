"""End-to-end PRIX index tests: build, variants, optimizer, querying."""

import pytest

from repro.baselines.naive import naive_match_count, naive_matches
from repro.datasets import figure2_query
from repro.prix.index import (IndexOptions, PrixIndex, VARIANT_EXTENDED,
                              VARIANT_REGULAR)
from repro.query.xpath import parse_xpath
from repro.xmlkit.parser import parse_document


@pytest.fixture(scope="module")
def small_corpus():
    docs = [
        parse_document("<a><b><c/><d/></b><b><c/></b></a>", 1),
        parse_document("<a><b><d/></b><e>x</e></a>", 2),
        parse_document("<r><a><b><c/><d/></b></a></r>", 3),
    ]
    return docs


class TestBuild:
    def test_both_variants_by_default(self, small_corpus):
        with PrixIndex.build(small_corpus) as index:
            assert set(index.variants()) == {"rp", "ep"}

    def test_single_variant(self, small_corpus):
        options = IndexOptions(variants=(VARIANT_REGULAR,))
        with PrixIndex.build(small_corpus, options) as index:
            assert index.variants() == ("rp",)
            with pytest.raises(KeyError):
                index.query(parse_xpath("//a/b"), variant="ep")

    def test_duplicate_doc_ids_rejected(self, small_corpus):
        docs = [small_corpus[0], small_corpus[0]]
        with pytest.raises(ValueError):
            PrixIndex.build(docs)

    def test_doc_count(self, small_corpus):
        with PrixIndex.build(small_corpus) as index:
            assert index.doc_count == 3

    def test_trie_stats(self, small_corpus):
        with PrixIndex.build(small_corpus) as index:
            stats = index.trie_stats("rp")
            assert stats.sequence_count == 3
            assert stats.node_count > 0
            assert stats.total_sequence_length == sum(
                doc.size - 1 for doc in small_corpus)

    def test_file_backed_build(self, small_corpus, tmp_path):
        options = IndexOptions(path=str(tmp_path / "prix.db"))
        with PrixIndex.build(small_corpus, options) as index:
            matches = index.query(parse_xpath("//a/b/c"))
            assert len(matches) == 3

    def test_dynamic_labeler_build(self, small_corpus):
        options = IndexOptions(labeler="dynamic", alpha=2)
        with PrixIndex.build(small_corpus, options) as index:
            matches = index.query(parse_xpath("//a/b/c"))
            assert len(matches) == 3


class TestOptimizer:
    def test_values_choose_extended(self, small_corpus):
        with PrixIndex.build(small_corpus) as index:
            assert index.choose_variant(parse_xpath('//e[text()="x"]')) \
                == VARIANT_EXTENDED

    def test_no_values_choose_by_selectivity(self, small_corpus):
        """Value-free queries pick the variant whose first filter label
        is rarest (RP on ties); both variants are answer-equivalent."""
        with PrixIndex.build(small_corpus) as index:
            choice = index.choose_variant(parse_xpath("//a/b"))
            assert choice in (VARIANT_REGULAR, VARIANT_EXTENDED)
            rp = {(m.doc_id, m.canonical)
                  for m in index.query("//a/b", variant="rp")}
            auto = {(m.doc_id, m.canonical) for m in index.query("//a/b")}
            assert auto == rp

    def test_rp_preferred_on_frequency_tie(self):
        # One document where both variants' first labels are unique.
        docs = [parse_document("<top><mid><leafy/></mid></top>", 1)]
        with PrixIndex.build(docs) as index:
            assert index.choose_variant(
                parse_xpath("//top/mid/leafy")) == VARIANT_REGULAR

    def test_fallback_when_ep_missing(self, small_corpus):
        options = IndexOptions(variants=(VARIANT_REGULAR,))
        with PrixIndex.build(small_corpus, options) as index:
            assert index.choose_variant(parse_xpath('//e[text()="x"]')) \
                == VARIANT_REGULAR


class TestQueries:
    def test_accepts_xpath_string(self, small_corpus):
        with PrixIndex.build(small_corpus) as index:
            matches, stats = index.query_with_stats("//a/b/c")
            assert len(matches) == 3
            assert stats.matches == 3

    def test_variants_agree(self, small_corpus):
        with PrixIndex.build(small_corpus) as index:
            for xpath in ("//a/b", "//a/b/c", "//a//d", '//e[text()="x"]',
                          "//a[./b]/e", "/r//b"):
                rp = {(m.doc_id, m.canonical)
                      for m in index.query(xpath, variant="rp")}
                ep = {(m.doc_id, m.canonical)
                      for m in index.query(xpath, variant="ep")}
                assert rp == ep, xpath

    def test_matches_oracle(self, small_corpus):
        with PrixIndex.build(small_corpus) as index:
            for xpath in ("//a/b", "//b[./c][./d]", "//a//c", "/a/b",
                          '//e[text()="x"]'):
                pattern = parse_xpath(xpath)
                got = {(m.doc_id, m.canonical)
                       for m in index.query(pattern)}
                want = {(d.doc_id, emb) for d in small_corpus
                        for emb in naive_matches(d, pattern)}
                assert got == want, xpath

    def test_ordered_vs_unordered(self, small_corpus):
        with PrixIndex.build(small_corpus) as index:
            # b[./d][./c] in that branch order: doc 1 has b with (c, d) --
            # ordered query d-before-c finds nothing there.
            pattern = parse_xpath("//b[./d][./c]")
            unordered = index.query(pattern, ordered=False)
            ordered = index.query(pattern, ordered=True)
            assert len(unordered) > len(ordered)
            assert len(ordered) == 0

    def test_match_images_api(self, small_corpus):
        with PrixIndex.build(small_corpus) as index:
            (match,) = [m for m in index.query("//a/e") if m.doc_id == 2]
            assert match.root_image > 0
            assert match.image_of(1) > 0
            with pytest.raises(KeyError):
                match.image_of(99)

    def test_query_stats_fields(self, small_corpus):
        with PrixIndex.build(small_corpus) as index:
            _, stats = index.query_with_stats("//a/b", cold=True)
            assert stats.variant == "rp"
            assert stats.arrangements == 1
            assert stats.physical_reads > 0
            assert stats.elapsed_seconds > 0

    def test_paper_query_on_figure2(self, fig2_doc):
        # Figure 2's Q has 4 embeddings in T: the B node has two C
        # children, and the E node has two F children (2 x 2).  Example 6
        # walks through one of them.
        with PrixIndex.build([fig2_doc]) as index:
            matches = index.query(figure2_query())
            assert len(matches) == 4
            assert naive_match_count([fig2_doc], figure2_query()) == 4
            assert {m.canonical for m in matches} == naive_matches(
                fig2_doc, figure2_query())


class TestColdVsWarm:
    def test_cold_costs_more(self, small_corpus):
        with PrixIndex.build(small_corpus) as index:
            _, cold = index.query_with_stats("//a/b/c", cold=True)
            _, warm = index.query_with_stats("//a/b/c", cold=False)
            assert warm.physical_reads <= cold.physical_reads

    def test_flush_cache(self, small_corpus):
        with PrixIndex.build(small_corpus) as index:
            index.query("//a/b")
            index.flush_cache()
            _, stats = index.query_with_stats("//a/b")
            assert stats.physical_reads > 0
