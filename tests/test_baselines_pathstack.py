"""PathStack tests (the published linear-path algorithm)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_random_tree
from repro.baselines.naive import naive_matches
from repro.baselines.pathstack import path_stack
from repro.baselines.region import StreamSet
from repro.query.twig import Axis, TwigNode, TwigPattern
from repro.query.xpath import parse_xpath
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.xmlkit.parser import parse_document
from repro.xmlkit.tree import Document


def stream_set(docs):
    pool = BufferPool(Pager.in_memory())
    return StreamSet.build(docs, pool)


class TestPathStack:
    def test_child_path(self):
        docs = [parse_document("<a><b><c/></b><c/></a>", 1)]
        matches, _ = path_stack(parse_xpath("//a/b/c"), stream_set(docs))
        assert len(matches) == 1

    def test_descendant_path(self):
        docs = [parse_document("<a><x><b/></x><b/></a>", 1)]
        matches, _ = path_stack(parse_xpath("//a//b"), stream_set(docs))
        assert len(matches) == 2

    def test_value_leaf(self):
        docs = [parse_document("<a><b>x</b><b>y</b></a>", 1)]
        matches, _ = path_stack(parse_xpath('//a/b[text()="y"]'),
                                stream_set(docs))
        assert len(matches) == 1

    def test_recursive_same_tag_path(self):
        # The self-ancestor trap: one element must never pair with
        # itself when the query chains the same tag.
        docs = [parse_document("<c><c><c/></c></c>", 1)]
        matches, _ = path_stack(parse_xpath("//c//c"), stream_set(docs))
        assert len(matches) == 3  # (1,2),(1,3),(2,3) by postorder pairs

    def test_branching_rejected(self):
        docs = [parse_document("<a/>", 1)]
        with pytest.raises(ValueError):
            path_stack(parse_xpath("//a[./b]/c"), stream_set(docs))

    def test_each_element_scanned_once(self):
        docs = [parse_document("<a>" + "<b/>" * 50 + "</a>", 1)]
        streams = stream_set(docs)
        _, stats = path_stack(parse_xpath("//a/b"), streams)
        # Optimality: 51 elements, each touched exactly once.
        assert stats.elements_scanned == 51


def _random_path_query(rng, tags="abc"):
    root = TwigNode(rng.choice(tags))
    node = root
    for _ in range(rng.randint(1, 4)):
        axis = Axis.DESCENDANT if rng.random() < 0.4 else Axis.CHILD
        if rng.random() < 0.15:
            node = node.append(TwigNode(rng.choice(["v1", "v2"]),
                                        axis=axis, is_value=True))
            break
        node = node.append(TwigNode(rng.choice(tags), axis=axis))
    return TwigPattern(root, absolute=False, source="path")


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_pathstack_matches_xpath_oracle(seed):
    rng = random.Random(seed)
    docs = [Document(make_random_tree(rng, max_nodes=15), doc_id=i + 1)
            for i in range(3)]
    pattern = _random_path_query(rng)
    got, _ = path_stack(pattern, stream_set(docs))
    want = {(d.doc_id, emb) for d in docs
            for emb in naive_matches(d, pattern, semantics="xpath")}
    assert got == want


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_pathstack_agrees_with_twigstack(seed):
    from repro.baselines.twigstack import twig_stack
    rng = random.Random(seed)
    docs = [Document(make_random_tree(rng, max_nodes=15), doc_id=i + 1)
            for i in range(3)]
    pattern = _random_path_query(rng)
    streams = stream_set(docs)
    ps_matches, _ = path_stack(pattern, streams)
    ts_matches, _ = twig_stack(pattern, streams)
    assert ps_matches == ts_matches
