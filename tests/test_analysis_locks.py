"""prixrace tests: lock recognition, the must-lockset engine through the
tricky ``with``/try/finally shapes, the four lockset rules, annotation
consistency with the ``_GUARDED`` maps, and the evil-twin oracle.

The shape tests come in pairs -- a correct form that must stay silent
and a findings twin one edit away -- so a rule regression shows up as
either a false positive or a false negative, never silently.
"""

import ast
import textwrap
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.core import SourceFile, check_source
from repro.analysis.flow import (GuardedFieldAccessRule, LockOrderRule,
                                 NoBlockingIoUnderLatchRule,
                                 ReleaseOnAllPathsRule)
from repro.analysis.flow.locks import _harvest, _lock_name
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.storage.stats import IOStats

RACE_RULES = (GuardedFieldAccessRule, LockOrderRule,
              NoBlockingIoUnderLatchRule, ReleaseOnAllPathsRule)
STORAGE_PATH = "src/repro/storage/bptree.py"
REPO_ROOT = Path(__file__).resolve().parent.parent

#: A class header declaring one guarded map and one marked latch, shared
#: by most snippets below.
HEADER = """
    class Pool:
        def __init__(self, pager):
            self._latch = Latch("pool")  # prixrace: no-blocking-io
            self._order_latch = Latch("order")
            self._frames = {}  # prixrace: guarded-by=_latch
            self._pager = pager
"""


def findings(body, rules=RACE_RULES):
    code = textwrap.dedent(HEADER) + textwrap.indent(
        textwrap.dedent(body), "    ")
    source = SourceFile(STORAGE_PATH, code)
    return check_source(source, list(rules))


def rule_names(body, rules=RACE_RULES):
    return sorted(finding.rule for finding in findings(body, rules))


class TestLockRecognition:
    def accepts(self, text):
        return _lock_name(ast.parse(text, mode="eval").body)

    def test_lock_like_terminals_accepted(self):
        for text in ("self._latch", "self._io_latch", "lock", "a_lock",
                     "self.mutex", "rlock", "latch2"):
            assert self.accepts(text) == text

    def test_non_lock_terminals_rejected(self):
        for text in ("self.block", "unlock", "clock", "latchkey",
                     "self._frames", "get_lock()"):
            assert self.accepts(text) is None


class TestGuardedFieldAccess:
    def test_unlatched_access_flagged(self):
        assert rule_names("""
            def f(self, page_id):
                return self._frames.get(page_id)
        """) == ["guarded-field-access"]

    def test_latched_access_clean(self):
        assert rule_names("""
            def f(self, page_id):
                with self._latch:
                    return self._frames.get(page_id)
        """) == []

    def test_augassign_counts_as_access(self):
        assert rule_names("""
            def f(self, page_id):
                self._frames[page_id] += 1
        """) == ["guarded-field-access"]

    def test_branch_header_counts_as_access(self):
        assert rule_names("""
            def f(self, page_id):
                if page_id in self._frames:
                    return True
                return False
        """) == ["guarded-field-access"]

    def test_init_is_exempt(self):
        # The HEADER's __init__ assigns _frames latch-free and stays
        # silent: the object is not shared during construction.
        assert rule_names("""
            def f(self):
                pass
        """) == []

    def test_conditionally_held_latch_flagged(self):
        # Held on one path into the read, free on the other: the must
        # analysis (intersection at the join) drops it, so this is a
        # race on the latch-free path.
        assert rule_names("""
            def f(self, flag):
                if flag:
                    self._latch.acquire()
                count = len(self._frames)
                if flag:
                    self._latch.release()
                return count
        """, rules=[GuardedFieldAccessRule]) == ["guarded-field-access"]

    def test_requires_helper_checked_at_call_site(self):
        body = """
            def note(self, page_id):  # prixrace: requires=_latch
                self._frames[page_id] = None

            def bad(self, page_id):
                self.note(page_id)

            def good(self, page_id):
                with self._latch:
                    self.note(page_id)
        """
        found = findings(body, rules=[GuardedFieldAccessRule])
        assert [f.rule for f in found] == ["guarded-field-access"]
        assert "self.note()" in found[0].message
        # The helper body itself is clean: requires= pre-holds the latch.


class TestLockShapes:
    """Satellite coverage: the CFG/lockset shapes concurrency code uses."""

    def test_multi_item_with_holds_both(self):
        assert rule_names("""
            def f(self):
                with self._latch, self._order_latch:
                    return len(self._frames)
        """) == []

    def test_nested_with_one_direction_is_not_a_cycle(self):
        assert rule_names("""
            def f(self):
                with self._latch:
                    with self._order_latch:
                        return len(self._frames)
        """) == []

    def test_acquire_then_try_finally_release_clean(self):
        assert rule_names("""
            def f(self):
                self._latch.acquire()
                try:
                    return len(self._frames)
                finally:
                    self._latch.release()
        """) == []

    def test_acquire_inside_try_release_in_finally_clean(self):
        assert rule_names("""
            def f(self):
                try:
                    self._latch.acquire()
                    return len(self._frames)
                finally:
                    self._latch.release()
        """) == []

    def test_conditional_release_on_both_branches_clean(self):
        # Nothing between acquire and the releases can raise, and both
        # branches release: no leak on any path.  (Put a call in either
        # branch and the strict policy flags the exception path -- see
        # TestReleaseOnAllPaths.)
        assert rule_names("""
            def f(self, flag):
                self._latch.acquire()
                if flag:
                    self._latch.release()
                    return 1
                self._latch.release()
                return 0
        """) == []

    def test_reentrant_nesting_tracks_levels(self):
        # The inner with releases one *level*; the outer hold survives,
        # so the access after the inner block is still guarded.
        assert rule_names("""
            def f(self):
                with self._latch:
                    with self._latch:
                        first = len(self._frames)
                    second = len(self._frames)
                return first + second
        """) == []


class TestLockOrder:
    def test_opposite_nestings_flagged_once(self):
        names = rule_names("""
            def ab(self):
                with self._latch:
                    with self._order_latch:
                        pass

            def ba(self):
                with self._order_latch:
                    with self._latch:
                        pass
        """, rules=[LockOrderRule])
        assert names == ["lock-order"]

    def test_three_latch_cycle_flagged(self):
        names = rule_names("""
            def ab(self):
                with self._latch:
                    with self._order_latch:
                        pass

            def bc(self, other_latch):
                with self._order_latch:
                    with other_latch:
                        pass

            def ca(self, other_latch):
                with other_latch:
                    with self._latch:
                        pass
        """, rules=[LockOrderRule])
        assert names == ["lock-order"]

    def test_reentrant_acquire_is_not_a_self_cycle(self):
        assert rule_names("""
            def f(self):
                with self._latch:
                    with self._latch:
                        pass
        """, rules=[LockOrderRule]) == []


class TestNoBlockingIoUnderLatch:
    def test_pager_read_under_marked_latch_flagged(self):
        assert rule_names("""
            def f(self, page_id):
                with self._latch:
                    return self._pager.read(page_id)
        """, rules=[NoBlockingIoUnderLatchRule]) == [
            "no-blocking-io-under-latch"]

    def test_pager_read_outside_latch_clean(self):
        assert rule_names("""
            def f(self, page_id):
                with self._latch:
                    cached = self._frames.get(page_id)
                if cached is not None:
                    return cached
                return self._pager.read(page_id)
        """, rules=[NoBlockingIoUnderLatchRule]) == []

    def test_unmarked_latch_is_not_checked(self):
        assert rule_names("""
            def f(self, page_id):
                with self._order_latch:
                    return self._pager.read(page_id)
        """, rules=[NoBlockingIoUnderLatchRule]) == []

    def test_fsync_and_self_flush_flagged(self):
        assert rule_names("""
            def f(self):
                with self._latch:
                    fsync_file(self._file)
                    self.flush()
        """, rules=[NoBlockingIoUnderLatchRule]) == [
            "no-blocking-io-under-latch", "no-blocking-io-under-latch"]


class TestReleaseOnAllPaths:
    def test_exception_path_leak_flagged(self):
        # load() can raise; the latch is then held forever (strict
        # policy: any call can raise).
        assert rule_names("""
            def f(self, page_id):
                self._latch.acquire()
                frame = load(page_id)
                self._latch.release()
                return frame
        """, rules=[ReleaseOnAllPathsRule]) == ["release-on-all-paths"]

    def test_with_statement_is_structurally_safe(self):
        assert rule_names("""
            def f(self, page_id):
                with self._latch:
                    return load(page_id)
        """, rules=[ReleaseOnAllPathsRule]) == []

    def test_lock_wrapper_methods_exempt(self):
        assert rule_names("""
            def acquire(self):
                self._latch.acquire()

            def release(self):
                self._latch.release()
        """, rules=[ReleaseOnAllPathsRule]) == []


class TestAnnotationConsistency:
    """The human-readable comments and the machine-readable ``_GUARDED``
    maps the sanitizer enforces must never drift apart."""

    CASES = (
        ("src/repro/storage/buffer_pool.py", "BufferPool", BufferPool),
        ("src/repro/storage/pager.py", "Pager", Pager),
        ("src/repro/storage/stats.py", "IOStats", IOStats),
    )

    def harvest(self, relative, cls_name):
        path = REPO_ROOT / relative
        specs = _harvest(SourceFile(str(path), path.read_text()))
        return specs[cls_name]

    def test_guarded_comments_match_guarded_maps(self):
        for relative, cls_name, cls in self.CASES:
            spec = self.harvest(relative, cls_name)
            assert spec.guarded == cls._GUARDED, cls_name

    def test_requires_helpers_declared(self):
        pool = self.harvest("src/repro/storage/buffer_pool.py",
                            "BufferPool")
        assert pool.requires == {"_note_dirty": "_latch",
                                 "_evictable": "_latch",
                                 "_exhausted": "_latch"}
        pager = self.harvest("src/repro/storage/pager.py", "Pager")
        assert pager.requires == {"_check_range": "_io_latch"}

    def test_frame_map_latch_is_marked_no_blocking(self):
        pool = self.harvest("src/repro/storage/buffer_pool.py",
                            "BufferPool")
        assert pool.no_blocking == {"self._latch"}


class TestEvilTwin:
    """The seeded violations in tests/eviltwin_pool.py are the
    acceptance oracle: each must be flagged by exactly its rule."""

    def test_each_seeded_violation_flagged(self):
        result = lint_paths([REPO_ROOT / "tests" / "eviltwin_pool.py"])
        assert sorted(f.rule for f in result.findings) == [
            "guarded-field-access",
            "lock-order",
            "no-blocking-io-under-latch",
            "release-on-all-paths",
        ]

    def test_violations_are_grandfathered_not_fixed(self):
        from repro.analysis import load_baseline
        baseline = load_baseline(REPO_ROOT / ".prixlint-baseline.json")
        rules = {rule for rule, path, _ in baseline
                 if path.endswith("eviltwin_pool.py")}
        assert rules == {"guarded-field-access", "lock-order",
                         "no-blocking-io-under-latch",
                         "release-on-all-paths"}
