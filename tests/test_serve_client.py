"""Unit tests for the retrying client (``repro.serve.client``).

The opener and the sleep are injected, so these run with no sockets and
no wall-clock: they pin the retry discipline (idempotent-only, typed
retryable statuses, exhaustion), the seeded-jitter backoff with the
``Retry-After`` floor, and the typed error mapping onto the
:mod:`repro.exitcodes` vocabulary.
"""

import email.message
import io
import json
import urllib.error

import pytest

from repro.exitcodes import (EXIT_CORRUPTION, EXIT_ERROR, EXIT_TIMEOUT,
                             EXIT_USAGE)
from repro.serve.client import (RETRYABLE_STATUSES, ClientCorruptionError,
                                ClientError, ClientTimeoutError,
                                ClientUsageError, PrixServeClient,
                                ServerUnavailableError)
from repro.serve.protocol import DEADLINE_HEADER

URL = "http://127.0.0.1:9"


def http_error(status, body, headers=None):
    """A scripted :class:`urllib.error.HTTPError` with a JSON body."""
    message = email.message.Message()
    for name, value in (headers or {}).items():
        message[name] = value
    raw = json.dumps(body).encode("utf-8")
    return urllib.error.HTTPError(URL + "/query", status, "scripted",
                                  message, io.BytesIO(raw))


def protocol_error(code, exit_code, message="boom", retry_after=None,
                   status=500, headers=None):
    error = {"code": code, "exit_code": exit_code, "message": message}
    if retry_after is not None:
        error["retry_after"] = retry_after
    return http_error(status, {"ok": False, "error": error}, headers)


class _Response:
    def __init__(self, raw):
        self._raw = raw

    def read(self):
        return self._raw

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        return False


class FakeOpener:
    """Pops one scripted outcome per attempt: an exception to raise, or
    a dict/bytes to serve as the 200 body."""

    def __init__(self, *outcomes):
        self.outcomes = list(outcomes)
        self.requests = []

    def __call__(self, request, timeout):
        self.requests.append((request, timeout))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        if isinstance(outcome, dict):
            outcome = json.dumps(outcome).encode("utf-8")
        return _Response(outcome)


def make_client(*outcomes, **kwargs):
    opener = FakeOpener(*outcomes)
    sleeps = []
    kwargs.setdefault("retries", 3)
    client = PrixServeClient(URL, opener=opener, sleep=sleeps.append,
                             **kwargs)
    return client, opener, sleeps


class TestRequestShape:
    def test_query_posts_canonical_body(self):
        client, opener, _ = make_client({"ok": True, "doc_ids": [1]})
        result = client.query("//a/b", index="dblp", ordered=True,
                              variant="ep", use_maxgap=False, limit=3)
        assert result == {"ok": True, "doc_ids": [1]}
        (request, timeout), = opener.requests
        assert request.get_method() == "POST"
        assert request.full_url == URL + "/query"
        assert timeout == client.timeout
        assert json.loads(request.data.decode("utf-8")) == {
            "xpath": "//a/b", "index": "dblp", "ordered": True,
            "variant": "ep", "use_maxgap": False, "limit": 3}
        assert request.get_header("Content-type") == "application/json"

    def test_query_defaults_send_a_minimal_body(self):
        client, opener, _ = make_client({"ok": True})
        client.query("//a")
        (request, _), = opener.requests
        assert json.loads(request.data.decode("utf-8")) == {
            "xpath": "//a", "index": "default"}
        assert request.get_header(DEADLINE_HEADER.capitalize()) is None

    def test_deadline_rides_the_header(self):
        client, opener, _ = make_client({"ok": True})
        client.query("//a", deadline_ms=250)
        (request, _), = opener.requests
        assert request.get_header("X-prix-deadline-ms") == "250.0"

    def test_get_endpoints(self):
        client, opener, _ = make_client({"a": 1}, {"b": 2}, {"c": 3})
        assert client.metrics() == {"a": 1}
        assert client.indexes() == {"b": 2}
        assert client.healthz() == {"c": 3}
        methods = [r.get_method() for r, _ in opener.requests]
        urls = [r.full_url for r, _ in opener.requests]
        assert methods == ["GET", "GET", "GET"]
        assert urls == [URL + "/metrics", URL + "/indexes",
                        URL + "/healthz"]


class TestTypedErrors:
    @pytest.mark.parametrize("code,exit_code,status,cls", [
        ("bad-request", EXIT_USAGE, 400, ClientUsageError),
        ("not-found", EXIT_USAGE, 404, ClientUsageError),
        ("corruption", EXIT_CORRUPTION, 500, ClientCorruptionError),
        ("request-timeout", EXIT_TIMEOUT, 408, ClientTimeoutError),
        ("over-capacity", EXIT_ERROR, 503, ServerUnavailableError),
        ("draining", EXIT_ERROR, 503, ServerUnavailableError),
        ("circuit-open", EXIT_ERROR, 503, ServerUnavailableError),
        ("internal", EXIT_ERROR, 500, ClientError),
    ])
    def test_protocol_errors_map_to_the_typed_hierarchy(
            self, code, exit_code, status, cls):
        client, _, _ = make_client(
            protocol_error(code, exit_code, status=status), retries=0)
        with pytest.raises(cls) as caught:
            client.query("//a")
        assert type(caught.value) is cls
        assert caught.value.exit_code == exit_code
        assert caught.value.status == status
        assert caught.value.error["code"] == code
        assert code in str(caught.value)

    def test_retry_after_prefers_body_over_header(self):
        client, _, _ = make_client(
            protocol_error("circuit-open", EXIT_ERROR, retry_after=7,
                           status=503, headers={"Retry-After": "99"}),
            retries=0)
        with pytest.raises(ServerUnavailableError) as caught:
            client.query("//a")
        assert caught.value.retry_after == 7

    def test_retry_after_header_is_the_fallback(self):
        client, _, _ = make_client(
            http_error(503, {"ok": False}, {"Retry-After": "4"}),
            retries=0)
        with pytest.raises(ClientError) as caught:
            client.query("//a")
        assert caught.value.retry_after == 4.0

    def test_unparseable_error_body_still_carries_the_status(self):
        message = email.message.Message()
        broken = urllib.error.HTTPError(URL, 500, "x", message,
                                        io.BytesIO(b"<html>"))
        client, _, _ = make_client(broken, retries=0)
        with pytest.raises(ClientError) as caught:
            client.query("//a")
        assert caught.value.status == 500
        assert caught.value.payload is None

    def test_undecodable_success_body_is_typed(self):
        client, _, _ = make_client(b"\xff\xfe not json")
        with pytest.raises(ClientError) as caught:
            client.query("//a")
        assert caught.value.status == 200
        assert caught.value.exit_code == EXIT_ERROR

    def test_unhealthy_healthz_returns_its_body(self):
        body = {"ok": False, "healthy": False,
                "error": {"code": "corruption", "exit_code": 3,
                          "message": "sick"}}
        client, _, _ = make_client(http_error(503, body), retries=0)
        assert client.healthz() == body


class TestRetryDiscipline:
    def test_retryable_statuses_are_the_contract(self):
        assert RETRYABLE_STATUSES == {408, 429, 500, 503}

    def test_transient_errors_retry_until_success(self):
        client, opener, sleeps = make_client(
            urllib.error.URLError("connection refused"),
            protocol_error("internal", EXIT_ERROR, status=500),
            protocol_error("budget-exhausted", EXIT_ERROR, status=429),
            {"ok": True, "doc_ids": [2]})
        assert client.query("//a") == {"ok": True, "doc_ids": [2]}
        assert len(opener.requests) == 4
        assert len(sleeps) == 3

    def test_caller_mistakes_fail_fast(self):
        client, opener, sleeps = make_client(
            protocol_error("bad-request", EXIT_USAGE, status=400))
        with pytest.raises(ClientUsageError):
            client.query("//a")
        assert len(opener.requests) == 1
        assert sleeps == []

    def test_exhaustion_raises_the_last_typed_error(self):
        outcomes = [protocol_error("circuit-open", EXIT_ERROR, status=503,
                                   retry_after=1) for _ in range(3)]
        client, opener, sleeps = make_client(*outcomes, retries=2)
        with pytest.raises(ServerUnavailableError) as caught:
            client.query("//a")
        assert len(opener.requests) == 3
        assert caught.value.retry_after == 1
        # Retry-After floors every backoff sleep.
        assert all(delay >= 1.0 for delay in sleeps)

    def test_reload_is_never_retried(self):
        client, opener, sleeps = make_client(
            urllib.error.URLError("connection reset"), retries=5)
        with pytest.raises(ClientError):
            client.reload("dblp")
        assert len(opener.requests) == 1
        assert sleeps == []
        (request, _), = opener.requests
        assert request.full_url == URL + "/reload"
        assert json.loads(request.data.decode("utf-8")) == {"index": "dblp"}

    def test_timeout_on_the_wire_is_a_transport_retry(self):
        client, opener, _ = make_client(TimeoutError("socket"), {"ok": True})
        assert client.query("//a") == {"ok": True}
        assert len(opener.requests) == 2


class TestBackoff:
    def outcomes(self, count):
        return [urllib.error.URLError("down") for _ in range(count)]

    def test_jitter_is_seeded_and_replayable(self):
        first, _, sleeps_a = make_client(*self.outcomes(4), retries=3,
                                         seed=42)
        second, _, sleeps_b = make_client(*self.outcomes(4), retries=3,
                                          seed=42)
        for client in (first, second):
            with pytest.raises(ClientError):
                client.query("//a")
        assert sleeps_a == sleeps_b
        assert len(sleeps_a) == 3

    def test_different_seeds_decorrelate(self):
        client_a, _, sleeps_a = make_client(*self.outcomes(4), retries=3,
                                            seed=1)
        client_b, _, sleeps_b = make_client(*self.outcomes(4), retries=3,
                                            seed=2)
        for client in (client_a, client_b):
            with pytest.raises(ClientError):
                client.query("//a")
        assert sleeps_a != sleeps_b

    def test_backoff_ceiling_doubles_then_caps(self):
        client, _, _ = make_client(backoff_base=0.1, backoff_max=0.4)
        for failures, ceiling in [(0, 0.1), (1, 0.2), (2, 0.4), (5, 0.4)]:
            delays = [client._delay(failures, None) for _ in range(50)]
            assert all(0.0 <= delay <= ceiling for delay in delays)

    def test_retry_after_floors_the_jitter(self):
        client, _, _ = make_client(backoff_base=0.01, backoff_max=0.02)
        error = ClientError("shed", status=503)
        error.retry_after = 5
        assert client._delay(0, error) == 5.0
