"""Tokenizer unit tests."""

import pytest

from repro.xmlkit.errors import XMLSyntaxError
from repro.xmlkit.tokenizer import TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)]


class TestBasicTokens:
    def test_simple_element(self):
        assert kinds("<a></a>") == [(TokenType.START, "a"),
                                    (TokenType.END, "a")]

    def test_self_closing(self):
        tokens = list(tokenize("<a/>"))
        assert len(tokens) == 1
        assert tokens[0].self_closing

    def test_text_content(self):
        assert kinds("<a>hello</a>") == [
            (TokenType.START, "a"), (TokenType.TEXT, "hello"),
            (TokenType.END, "a")]

    def test_nested_elements(self):
        assert kinds("<a><b/></a>") == [
            (TokenType.START, "a"), (TokenType.START, "b"),
            (TokenType.END, "a")]

    def test_whitespace_only_text_dropped(self):
        assert kinds("<a>\n  <b/>\n</a>") == [
            (TokenType.START, "a"), (TokenType.START, "b"),
            (TokenType.END, "a")]

    def test_names_with_punctuation(self):
        tokens = list(tokenize("<ns:tag-1.x/>"))
        assert tokens[0].value == "ns:tag-1.x"

    def test_end_tag_with_whitespace(self):
        assert kinds("<a></a >") == [(TokenType.START, "a"),
                                     (TokenType.END, "a")]


class TestAttributes:
    def test_single_attribute(self):
        token = next(tokenize('<a key="v"/>'))
        assert token.attrs == (("key", "v"),)

    def test_multiple_attributes(self):
        token = next(tokenize('<a x="1" y="2"/>'))
        assert token.attrs == (("x", "1"), ("y", "2"))

    def test_single_quotes(self):
        token = next(tokenize("<a x='1'/>"))
        assert token.attrs == (("x", "1"),)

    def test_attribute_with_spaces_around_eq(self):
        token = next(tokenize('<a x = "1"/>'))
        assert token.attrs == (("x", "1"),)

    def test_attribute_entity_decoding(self):
        token = next(tokenize('<a x="a&amp;b"/>'))
        assert token.attrs == (("x", "a&b"),)

    def test_empty_attribute_value(self):
        token = next(tokenize('<a x=""/>'))
        assert token.attrs == (("x", ""),)

    def test_missing_eq_raises(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize('<a x"1"/>'))

    def test_unquoted_value_raises(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a x=1/>"))

    def test_unterminated_value_raises(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize('<a x="1>'))


class TestEntities:
    @pytest.mark.parametrize("entity,expected", [
        ("&amp;", "&"), ("&lt;", "<"), ("&gt;", ">"),
        ("&quot;", '"'), ("&apos;", "'"),
    ])
    def test_predefined_entities(self, entity, expected):
        tokens = list(tokenize(f"<a>{entity}</a>"))
        assert tokens[1].value == expected

    def test_decimal_reference(self):
        tokens = list(tokenize("<a>&#65;</a>"))
        assert tokens[1].value == "A"

    def test_hex_reference(self):
        tokens = list(tokenize("<a>&#x41;</a>"))
        assert tokens[1].value == "A"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a>&nope;</a>"))


class TestMarkupSkipping:
    def test_comment_skipped(self):
        assert kinds("<a><!-- hi --></a>") == [
            (TokenType.START, "a"), (TokenType.END, "a")]

    def test_comment_with_markup_inside(self):
        assert kinds("<a><!-- <b> --></a>") == [
            (TokenType.START, "a"), (TokenType.END, "a")]

    def test_xml_declaration_skipped(self):
        assert kinds('<?xml version="1.0"?><a/>')[0] == (TokenType.START, "a")

    def test_processing_instruction_skipped(self):
        assert kinds("<?php echo ?><a/>")[0] == (TokenType.START, "a")

    def test_doctype_skipped(self):
        assert kinds("<!DOCTYPE dblp SYSTEM 'dblp.dtd'><a/>")[0] == (
            TokenType.START, "a")

    def test_doctype_with_internal_subset(self):
        text = "<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a/>"
        assert kinds(text)[0] == (TokenType.START, "a")

    def test_cdata_becomes_text(self):
        tokens = list(tokenize("<a><![CDATA[<raw&>]]></a>"))
        assert tokens[1].value == "<raw&>"

    def test_unterminated_comment_raises(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a><!-- oops"))

    def test_unterminated_cdata_raises(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a><![CDATA[oops"))


class TestErrors:
    def test_unterminated_start_tag(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a"))

    def test_malformed_start_tag(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<1a/>"))

    def test_malformed_end_tag(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a></1>"))

    def test_offset_reported(self):
        with pytest.raises(XMLSyntaxError) as info:
            list(tokenize("<a><!-- x"))
        assert info.value.offset == 3
