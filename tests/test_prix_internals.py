"""Unit tests for PRIX engine internals with thin coverage elsewhere:
the Trie-Symbol / Docid index wrappers, the allocation tree, and the
DocView's extended-to-original numbering."""

import pytest

from repro.prix.filtering import DocidIndex, TrieSymbolIndex
from repro.prix.incremental import AllocationTree
from repro.prix.refinement import DocView
from repro.prufer.sequence import extended_sequence
from repro.storage.bptree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.trie.labeling import BulkDFSLabeler
from repro.trie.trie import SequenceTrie
from repro.xmlkit.parser import parse_document


def make_pool():
    return BufferPool(Pager.in_memory(page_size=512))


class TestTrieSymbolIndex:
    @pytest.fixture()
    def index(self):
        pool = make_pool()
        entries = sorted([
            TrieSymbolIndex.make_entry("a", 10, 20, 1, 3),
            TrieSymbolIndex.make_entry("a", 12, 15, 2, 0),
            TrieSymbolIndex.make_entry("a", 30, 40, 1, 7),
            TrieSymbolIndex.make_entry("b", 11, 14, 2, 1),
        ], key=lambda pair: pair[0])
        return TrieSymbolIndex(BPlusTree.bulk_load(pool, entries))

    def test_range_query_scopes(self, index):
        inside = list(index.range_query_full("a", 10, 20))
        assert [(left, right) for left, right, _ in inside] == [(12, 15)]

    def test_open_interval_excludes_bounds(self, index):
        hits = list(index.range_query_full("a", 9, 30))
        lefts = [left for left, _, _ in hits]
        assert lefts == [10, 12]  # 30 itself excluded

    def test_gaps_returned(self, index):
        hits = {left: gap for left, _, _, gap
                in index.range_query_gaps("a", 0, 100)}
        assert hits == {10: 3, 12: 0, 30: 7}

    def test_label_isolation(self, index):
        assert list(index.range_query_full("b", 10, 20)) == [(11, 14, 2)]
        assert list(index.range_query_full("zzz", 0, 100)) == []


class TestDocidIndex:
    def test_closed_interval(self):
        pool = make_pool()
        entries = sorted([DocidIndex.make_entry(left, doc)
                          for left, doc in [(5, 1), (7, 2), (9, 3)]],
                         key=lambda pair: pair[0])
        index = DocidIndex(BPlusTree.bulk_load(pool, entries))
        assert sorted(index.documents_in(5, 9)) == [1, 2, 3]
        assert index.documents_in(6, 8) == [2]
        assert index.documents_in(10, 99) == []

    def test_duplicate_terminals(self):
        pool = make_pool()
        entries = [DocidIndex.make_entry(5, 1), DocidIndex.make_entry(5, 2)]
        index = DocidIndex(BPlusTree.bulk_load(pool, entries))
        assert sorted(index.documents_in(5, 5)) == [1, 2]


class TestAllocationTree:
    def test_set_get_roundtrip(self):
        pool = make_pool()
        alloc = AllocationTree(BPlusTree.create(pool))
        alloc.set(10, 15)
        assert alloc.get(10) == 15
        alloc.set(10, 99)   # overwrite
        assert alloc.get(10) == 99
        assert alloc.get(11) is None

    def test_seed_entries_from_trie(self):
        trie = SequenceTrie()
        trie.insert(("a", "b"), 1)
        trie.insert(("a", "c"), 2)
        BulkDFSLabeler().label(trie)
        pool = make_pool()
        alloc = AllocationTree(BPlusTree.bulk_load(
            pool, AllocationTree.seed_entries(trie)))
        a_node = trie.root.children["a"]
        # 'a' has two children: next free id sits past the last child.
        last_child_right = max(child.right
                               for child in a_node.children.values())
        assert alloc.get(a_node.left) == last_child_right
        # Leaves point just past their own left.
        b_node = a_node.children["b"]
        assert alloc.get(b_node.left) == b_node.left + 1


class TestDocViewNumbering:
    def test_extended_to_original_mapping(self):
        document = parse_document("<a><b>x</b><c/></a>", 1)
        seq = extended_sequence(document)
        nps = [0] * (seq.n_nodes + 1)
        labels = [None] * (seq.n_nodes + 1)
        for child, parent in enumerate(seq.nps, start=1):
            nps[child] = parent
            labels[parent] = seq.lps[child - 1]
        for label, number in seq.leaves:
            labels[number] = label
        view = DocView(1, nps, labels, extended=True)
        originals = [view.original_number(i)
                     for i in range(1, seq.n_nodes + 1)]
        # Dummies map to 0; original nodes map to 1..n in order.
        non_zero = [n for n in originals if n]
        assert non_zero == list(range(1, document.size + 1))
        assert originals.count(0) == len(seq.leaves)

    def test_regular_view_identity(self):
        view = DocView(1, [0, 2, 0], ["?", "x", "a"], extended=False)
        assert view.original_number(2) == 2
