"""Finer-grained (per-trie-node) MaxGap tests -- Section 5.4's closing
remark: "Finer-grained MaxGap values can be stored in every occurrence
of a symbol in the virtual trie"."""

import random

import pytest

from helpers import make_random_tree, make_random_twig
from repro.baselines.naive import naive_matches
from repro.prix.index import IndexOptions, PrixIndex
from repro.prufer.maxgap import position_gaps
from repro.prufer.sequence import regular_sequence
from repro.query.xpath import parse_xpath
from repro.xmlkit.parser import parse_document
from repro.xmlkit.tree import Document


class TestPositionGaps:
    def test_figure2_gaps(self, fig2_doc):
        seq = regular_sequence(fig2_doc)
        gaps = position_gaps(seq)
        # Children of node 15 span positions 1..14 -> every occurrence
        # of parent 15 carries gap 13; children of 13 span 10..12.
        for position, parent in enumerate(seq.nps):
            if parent == 15:
                assert gaps[position] == 13
            if parent == 13:
                assert gaps[position] == 2

    def test_single_child_gap_zero(self):
        doc = parse_document("<a><b><c/></b></a>", 1)
        assert position_gaps(regular_sequence(doc)) == [0, 0]


class TestGranularityCorrectness:
    def test_answers_identical_across_granularities(self):
        rng = random.Random(42)
        docs = [Document(make_random_tree(rng, max_nodes=18),
                         doc_id=i + 1) for i in range(5)]
        index = PrixIndex.build(docs)
        for _ in range(10):
            pattern = make_random_twig(rng)
            label = {(m.doc_id, m.canonical)
                     for m in index.query(pattern, strategy="trie",
                                          maxgap_granularity="label")}
            node = {(m.doc_id, m.canonical)
                    for m in index.query(pattern, strategy="trie",
                                         maxgap_granularity="node")}
            oracle = {(d.doc_id, emb) for d in docs
                      for emb in naive_matches(d, pattern)}
            assert label == node == oracle

    def test_node_granularity_prunes_at_least_as_hard(self):
        # One narrow document and one wide one sharing labels: the
        # per-node bound on the narrow path is tighter than the global.
        narrow = parse_document("<r><a><b/><c/></a></r>", 1)
        wide_inner = "".join(f"<x{i}/>" for i in range(10))
        wide = parse_document(f"<r><a><b/>{wide_inner}<c/></a></r>", 2)
        index = PrixIndex.build([narrow, wide])
        pattern = parse_xpath("//a[./b][./c]")
        _, label_stats = index.query_with_stats(
            pattern, strategy="trie", maxgap_granularity="label")
        _, node_stats = index.query_with_stats(
            pattern, strategy="trie", maxgap_granularity="node")
        assert {(m.doc_id, m.canonical) for m in index.query(pattern)}
        assert node_stats.filter.pruned_by_maxgap >= \
            label_stats.filter.pruned_by_maxgap

    def test_default_from_index_options(self):
        docs = [parse_document("<a><b/><c/></a>", 1)]
        index = PrixIndex.build(
            docs, IndexOptions(maxgap_granularity="node"))
        matches, stats = index.query_with_stats("//a[./b][./c]",
                                                strategy="trie")
        assert len(matches) == 1


class TestIncrementalGapWidening:
    def test_insert_widens_node_gap(self):
        options = IndexOptions(labeler="dynamic")
        index = PrixIndex.build(
            [parse_document("<r><a><b/><c/></a></r>", 1)], options)
        # The new document shares the trie prefix but has a much wider
        # sibling span; pruning with per-node gaps must still find it.
        wide_inner = "".join(f"<f{i}><g/></f{i}>" for i in range(6))
        index.insert_document(parse_document(
            f"<r><a><b/>{wide_inner}<c/></a></r>", 2))
        pattern = parse_xpath("//a[./b][./c]")
        matches = index.query(pattern, strategy="trie",
                              maxgap_granularity="node")
        assert {m.doc_id for m in matches} == {1, 2}

    def test_incremental_matches_batch_with_node_granularity(self):
        rng = random.Random(11)
        docs = [Document(make_random_tree(rng, max_nodes=12),
                         doc_id=i + 1) for i in range(10)]
        options = IndexOptions(labeler="dynamic")
        incremental = PrixIndex.build(docs[:5], options)
        for document in docs[5:]:
            incremental.insert_document(document)
        batch = PrixIndex.build(docs, options)
        for _ in range(8):
            pattern = make_random_twig(rng)
            got = {(m.doc_id, m.canonical)
                   for m in incremental.query(
                       pattern, strategy="trie",
                       maxgap_granularity="node")}
            want = {(m.doc_id, m.canonical)
                    for m in batch.query(pattern, strategy="trie",
                                         maxgap_granularity="node")}
            assert got == want
