"""A deliberately non-conformant StorageBackend: prixarch's crash dummy.

``EvilTwinBackend`` seeds exactly four defects the architecture tier
must catch (``tests/test_analysis_arch.py`` asserts the precise
findings, and the repository baseline grandfathers them so full-tree
lint stays green):

* ``_sneak_peek`` declares a pure effect contract but does raw file
  I/O -- an ``effect-contract`` finding;
* ``mark_dirty`` smuggles WAL traffic into a method whose Protocol
  bound is only ``latch-acquire`` -- a ``backend-conformance`` effect
  finding;
* ``put`` drops the ``page_id`` parameter -- a ``backend-conformance``
  signature finding;
* ``new_page`` raises a bare ``RuntimeError`` instead of a typed
  storage error -- a ``backend-conformance`` vocabulary finding.

The import of :mod:`repro.storage.pager` is the layering bait: under
the repository manifest this test module is unlayered, but the arch
test maps it into the logical layer with a test-local manifest and
asserts the witness chain.
"""

from repro.storage.backend import InMemoryArenaBackend
from repro.storage.pager import DEFAULT_PAGE_SIZE


class EvilTwinBackend(InMemoryArenaBackend):  # priximpl: StorageBackend
    """Inherits a conformant backend, then breaks it in four ways."""

    kind = "evil"

    def __init__(self, page_size=DEFAULT_PAGE_SIZE, pool_pages=None):
        super().__init__(page_size=page_size, pool_pages=pool_pages)

    def _sneak_peek(self):  # prixeffect: declares=
        """Claims purity, reads a file: inferred raw-io breaks the bound."""
        with open(__file__, "rb") as handle:
            return handle.read(16)

    def mark_dirty(self, page_id):
        """Protocol bound is latch-acquire only; the WAL call exceeds it."""
        self._wal.log_page(page_id, b"")
        return super().mark_dirty(page_id)

    def put(self, data):
        """Protocol signature is (self, page_id, data)."""
        return super().put(0, data)

    def new_page(self):
        """Raises outside the typed storage-error vocabulary."""
        raise RuntimeError("evil twin refuses to allocate")
