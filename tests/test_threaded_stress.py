"""Threaded stress harness: prix queries are thread-safe to the byte.

The oracle is exact, not statistical.  A file-backed index is built
once per seed; a single-threaded reference pass over a freshly opened
handle records, per query, the matches and the I/O the pool performed.
Then ``T`` threads (released together through a barrier) each run the
full query list against another freshly opened handle, and the run must
be *conserved*:

- every thread's matches are byte-identical to the reference (the
  latch protocol never lets a torn frame or half-decoded node reach the
  matcher);
- ``physical_reads`` equals the reference count exactly -- not "at
  most": the pool's single-flight loading means N threads missing on
  the same page perform one disk read, and the latched counters mean
  none of the increments are lost;
- ``logical_reads`` equals ``T x`` the reference count (every thread
  did all the work, none of it was lost);
- ``evictions`` stays zero (the pool is sized above the working set,
  so any eviction would mean frames leaked or thrashed).

Runs under ``PRIX_SANITIZE=1`` unchanged -- the CI threaded-stress job
does exactly that, with the guarded-field descriptors and latch-order
hooks active throughout.

Environment knobs (the CI matrix sets these):

- ``PRIX_STRESS_SEEDS``: comma-separated corpus seeds (default 11,23,47)
- ``PRIX_STRESS_THREADS``: comma-separated thread counts (default 2,8)
- ``PRIX_STRESS_ARTIFACT``: path; on oracle failure the full per-thread
  evidence is dumped there as JSON before the assertion fires.
"""

import json
import os
import threading

import pytest

from repro.bench.workloads import queries_for
from repro.datasets.dblp import dblp
from repro.prix.index import IndexOptions, PrixIndex

SEEDS = [int(s) for s in
         os.environ.get("PRIX_STRESS_SEEDS", "11,23,47").split(",")]
THREAD_COUNTS = [int(t) for t in
                 os.environ.get("PRIX_STRESS_THREADS", "2,8").split(",")]
QUERIES = [(spec.qid, spec.xpath) for spec in queries_for("dblp")]

#: Far above the working set of an 80-record corpus: the oracle demands
#: zero evictions, so the pool must never face eviction pressure.
POOL_PAGES = 512


def build_corpus_index(tmp_path, seed):
    """Build, save and close a small file-backed index; return its path."""
    path = str(tmp_path / f"stress-{seed}.prix")
    documents = dblp(n_records=80, seed=seed)
    index = PrixIndex.build(documents,
                            IndexOptions(path=path,
                                         pool_pages=POOL_PAGES))
    try:
        index.save()
    finally:
        index.close()
    return path


def run_query_list(index):
    """Run every query; return {qid: (repr(matches), match_count)}."""
    results = {}
    for qid, xpath in QUERIES:
        matches, _stats = index.query_with_stats(xpath)
        results[qid] = (repr(matches), len(matches))
    return results


def io_totals(index, base=None):
    """Current counters, minus ``base`` (the cost of opening the index)
    so the oracle sees the query phase alone."""
    snap = index.io_stats.snapshot()
    if base is not None:
        snap = snap.delta(base)
    return {"physical_reads": snap.physical_reads,
            "logical_reads": snap.logical_reads,
            "evictions": snap.evictions}


def reference_pass(path):
    """Single-threaded cold-open run: the ground truth."""
    with PrixIndex.open(path, pool_pages=POOL_PAGES) as index:
        base = index.io_stats.snapshot()
        results = run_query_list(index)
        totals = io_totals(index, base)
    return results, totals


def dump_artifact(payload):
    artifact = os.environ.get("PRIX_STRESS_ARTIFACT")
    if not artifact:
        return
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=repr)


@pytest.mark.parametrize("threads", THREAD_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_threaded_queries_are_exactly_conserved(tmp_path, seed, threads):
    path = build_corpus_index(tmp_path, seed)
    reference, ref_totals = reference_pass(path)
    assert ref_totals["evictions"] == 0
    assert ref_totals["physical_reads"] > 0  # the oracle is non-trivial

    with PrixIndex.open(path, pool_pages=POOL_PAGES) as index:
        base = index.io_stats.snapshot()
        barrier = threading.Barrier(threads)
        outcomes = [None] * threads

        def worker(slot):
            try:
                barrier.wait()
                outcomes[slot] = ("ok", run_query_list(index))
            except Exception as error:  # noqa: BLE001 - relayed below
                outcomes[slot] = ("err", repr(error))

        pool = [threading.Thread(target=worker, args=(slot,),
                                 name=f"stress-{seed}-{slot}")
                for slot in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        totals = io_totals(index, base)

    evidence = {"seed": seed, "threads": threads,
                "reference": reference, "reference_io": ref_totals,
                "threaded_io": totals, "outcomes": outcomes}

    errors = [o for o in outcomes if o[0] == "err"]
    if errors:
        dump_artifact(evidence)
    assert errors == []

    divergent = {slot: outcome[1] for slot, outcome in enumerate(outcomes)
                 if outcome[1] != reference}
    if divergent:
        dump_artifact(evidence)
    assert divergent == {}, "threaded results diverge from reference"

    expected = {"physical_reads": ref_totals["physical_reads"],
                "logical_reads": threads * ref_totals["logical_reads"],
                "evictions": 0}
    if totals != expected:
        dump_artifact(evidence)
    assert totals == expected


def test_sanity_reference_is_deterministic(tmp_path):
    # The oracle itself must be stable: two cold opens of the same file
    # agree byte-for-byte before any threading enters the picture.
    path = build_corpus_index(tmp_path, SEEDS[0])
    first = reference_pass(path)
    second = reference_pass(path)
    assert first == second
