"""Intentionally racy storage classes: the prixrace acceptance oracle.

Every method here commits exactly one of the concurrency sins the
prixrace tooling exists to catch, so the test suite can assert that each
seeded violation is flagged -- by the static rules
(``tests/test_analysis_locks.py`` lints this file and demands one
finding per sin) and, where the static scope ends, by the runtime
sanitizer (``tests/test_analysis_sanitizer.py`` drives
:class:`EvilBufferPool` from two threads).

This module is deliberately *not* collected by pytest (``python_files``
matches ``test_*``/``bench_*``) and its four static findings are
grandfathered in ``.prixlint-baseline.json`` -- they must exist, that is
the point -- so the full-tree lint stays green while any *new*
violation anywhere still fails the build.
"""

from repro.storage.buffer_pool import BufferPool
from repro.storage.latch import Latch


class EvilPool:
    """A hand-rolled frame cache that gets every latch rule wrong."""

    def __init__(self, pager):
        self._latch = Latch("evil-frames")  # prixrace: no-blocking-io
        self._order_latch = Latch("evil-order")
        self._frames = {}  # prixrace: guarded-by=_latch
        self._pager = pager

    def racy_read(self, page_id):
        # Seeded violation: guarded-field-access (no latch on any path).
        return self._frames.get(page_id)

    def blocking_under_latch(self, page_id):
        # Seeded violation: no-blocking-io-under-latch (a disk read
        # while holding the frame-map latch).
        with self._latch:
            frame = self._pager.read(page_id)
            self._frames[page_id] = frame
            return frame

    def take_frames_then_order(self):
        with self._latch:
            with self._order_latch:
                return len(self._frames)

    def take_order_then_frames(self):
        # Seeded violation: lock-order (the opposite nesting of
        # take_frames_then_order closes a cycle in the module's
        # acquisition-order graph).
        with self._order_latch:
            with self._latch:
                return len(self._frames)

    def leaky_scan(self, wanted):
        # Seeded violation: release-on-all-paths (the miss path and
        # every exception path return with the latch still held).
        self._latch.acquire()
        if wanted in self._frames:
            self._latch.release()
            return True
        return False


class EvilBufferPool(BufferPool):
    """A :class:`BufferPool` whose ``get`` skips the latch protocol.

    The static ``guarded-field-access`` rule is scoped to the class that
    *declares* the guarded fields, so this subclass is exactly the
    escape it cannot see -- and exactly what the runtime sanitizer's
    guarded-field descriptors catch once two threads share the pool.
    """

    def get(self, page_id):
        self.stats.add(logical_reads=1)
        frame = self._frames.get(page_id)  # unlatched: the data race
        if frame is not None:
            return frame
        return self._load(page_id)
