"""Shared fixtures for the test suite."""

import os
import random
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.datasets import (dblp, figure1_documents, figure2_document,
                            swissprot, treebank)
from repro.prix.index import PrixIndex
from repro.storage.backend import (DEFAULT_PAGE_SIZE, FilePagerBackend,
                                   InMemoryArenaBackend)
from repro.xmlkit.tree import Document, XMLNode


@pytest.fixture(params=["file", "arena"])
def make_backend(request, tmp_path):
    """Factory for the parametrized StorageBackend kinds.

    Storage tests taking this fixture run twice -- once over the
    production :class:`FilePagerBackend`, once over the in-memory
    :class:`InMemoryArenaBackend` -- asserting the substrates are
    observationally identical: same page contents, same ``IOStats``
    movements, same typed errors.  The fixture owns every backend it
    hands out and closes them at teardown; ``factory.kind`` exposes
    which substrate the current parametrization runs on.
    """
    opened = []

    def factory(page_size=DEFAULT_PAGE_SIZE, pool_pages=8, guard=None):
        if request.param == "file":
            backend = FilePagerBackend.open(
                str(tmp_path / f"backend{len(opened)}.db"),
                page_size=page_size, pool_pages=pool_pages, guard=guard)
        else:
            backend = InMemoryArenaBackend(
                page_size=page_size, pool_pages=pool_pages, guard=guard)
        opened.append(backend)
        return backend

    factory.kind = request.param
    yield factory
    for backend in opened:
        backend.close()


@pytest.fixture(scope="session")
def fig2_doc():
    """The paper's Figure 2(a) tree."""
    return figure2_document()


@pytest.fixture(scope="session")
def fig1_docs():
    return figure1_documents()


@pytest.fixture(scope="session")
def tiny_dblp():
    return dblp(n_records=120)


@pytest.fixture(scope="session")
def tiny_swissprot():
    return swissprot(n_entries=40)


@pytest.fixture(scope="session")
def tiny_treebank():
    return treebank(n_sentences=60)


@pytest.fixture(scope="session")
def tiny_indexes(tiny_dblp, tiny_swissprot, tiny_treebank):
    """PRIX indexes over the three tiny corpora."""
    return {
        "dblp": PrixIndex.build(tiny_dblp.documents),
        "swissprot": PrixIndex.build(tiny_swissprot.documents),
        "treebank": PrixIndex.build(tiny_treebank.documents),
    }
