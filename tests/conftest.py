"""Shared fixtures for the test suite."""

import os
import random
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.datasets import (dblp, figure1_documents, figure2_document,
                            swissprot, treebank)
from repro.prix.index import PrixIndex
from repro.xmlkit.tree import Document, XMLNode


@pytest.fixture(scope="session")
def fig2_doc():
    """The paper's Figure 2(a) tree."""
    return figure2_document()


@pytest.fixture(scope="session")
def fig1_docs():
    return figure1_documents()


@pytest.fixture(scope="session")
def tiny_dblp():
    return dblp(n_records=120)


@pytest.fixture(scope="session")
def tiny_swissprot():
    return swissprot(n_entries=40)


@pytest.fixture(scope="session")
def tiny_treebank():
    return treebank(n_sentences=60)


@pytest.fixture(scope="session")
def tiny_indexes(tiny_dblp, tiny_swissprot, tiny_treebank):
    """PRIX indexes over the three tiny corpora."""
    return {
        "dblp": PrixIndex.build(tiny_dblp.documents),
        "swissprot": PrixIndex.build(tiny_swissprot.documents),
        "treebank": PrixIndex.build(tiny_treebank.documents),
    }
