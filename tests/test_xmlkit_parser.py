"""Parser unit tests: token stream to tree, attribute folding."""

import pytest

from repro.xmlkit.errors import XMLSyntaxError
from repro.xmlkit.parser import parse_document, parse_fragment


class TestBasicParsing:
    def test_single_element(self):
        root = parse_fragment("<a/>")
        assert root.tag == "a"
        assert root.is_leaf

    def test_nested_structure(self):
        root = parse_fragment("<a><b><c/></b><d/></a>")
        assert [c.tag for c in root.children] == ["b", "d"]
        assert root.children[0].children[0].tag == "c"

    def test_text_becomes_value_node(self):
        root = parse_fragment("<a>hi</a>")
        child = root.children[0]
        assert child.is_value and child.tag == "hi"

    def test_mixed_content_order_preserved(self):
        root = parse_fragment("<a>x<b/>y</a>")
        assert [(c.tag, c.is_value) for c in root.children] == [
            ("x", True), ("b", False), ("y", True)]

    def test_parent_pointers(self):
        root = parse_fragment("<a><b/></a>")
        assert root.children[0].parent is root

    def test_document_assigns_ids_and_numbers(self):
        doc = parse_document("<a><b/></a>", doc_id=7)
        assert doc.doc_id == 7
        assert doc.root.postorder == doc.size == 2


class TestAttributeFolding:
    def test_attribute_becomes_subelement(self):
        root = parse_fragment('<a key="v"/>')
        attr = root.children[0]
        assert attr.tag == "@key"
        assert attr.children[0].is_value
        assert attr.children[0].tag == "v"

    def test_attribute_order_before_content(self):
        root = parse_fragment('<a k="v"><b/></a>')
        assert [c.tag for c in root.children] == ["@key".replace("key", "k"),
                                                  "b"]

    def test_empty_attribute_has_no_value_child(self):
        root = parse_fragment('<a k=""/>')
        assert root.children[0].is_leaf


class TestWellFormedness:
    def test_mismatched_tags_raise(self):
        with pytest.raises(XMLSyntaxError):
            parse_fragment("<a><b></a></b>")

    def test_unclosed_element_raises(self):
        with pytest.raises(XMLSyntaxError):
            parse_fragment("<a><b>")

    def test_stray_end_tag_raises(self):
        with pytest.raises(XMLSyntaxError):
            parse_fragment("</a>")

    def test_multiple_roots_raise(self):
        with pytest.raises(XMLSyntaxError):
            parse_fragment("<a/><b/>")

    def test_text_outside_root_raises(self):
        with pytest.raises(XMLSyntaxError):
            parse_fragment("x<a/>")

    def test_empty_document_raises(self):
        with pytest.raises(XMLSyntaxError):
            parse_fragment("")


class TestRealisticDocuments:
    def test_dblp_like_record(self):
        text = ('<inproceedings key="x/1"><author>A</author>'
                "<title>T</title><year>1990</year></inproceedings>")
        doc = parse_document(text)
        assert doc.root.tag == "inproceedings"
        assert doc.element_count() == 5  # root + @key + 3 fields
        assert doc.value_count() == 4

    def test_deep_nesting(self):
        text = "<a>" * 200 + "</a>" * 200
        doc = parse_document(text)
        assert doc.max_depth() == 200
