"""B+-tree tests: operations, splits, scans, bulk load, invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.bptree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.codec import encode_int
from repro.storage.errors import KeyNotFoundError
from repro.storage.pager import Pager


def make_tree(page_size=256, capacity=64):
    pool = BufferPool(Pager.in_memory(page_size=page_size),
                      capacity=capacity)
    return BPlusTree.create(pool), pool


class TestBasicOperations:
    def test_empty_tree(self):
        tree, _ = make_tree()
        assert len(tree) == 0
        assert list(tree.items()) == []
        assert tree.get(encode_int(1)) is None

    def test_insert_and_search(self):
        tree, _ = make_tree()
        tree.insert(encode_int(5), b"five")
        assert tree.search(encode_int(5)) == b"five"

    def test_search_missing_raises(self):
        tree, _ = make_tree()
        tree.insert(encode_int(1), b"x")
        with pytest.raises(KeyNotFoundError):
            tree.search(encode_int(2))

    def test_contains(self):
        tree, _ = make_tree()
        tree.insert(encode_int(3), b"")
        assert tree.contains(encode_int(3))
        assert not tree.contains(encode_int(4))

    def test_non_bytes_rejected(self):
        tree, _ = make_tree()
        with pytest.raises(TypeError):
            tree.insert(7, b"x")
        with pytest.raises(TypeError):
            tree.insert(encode_int(7), 9)

    def test_len_tracks_inserts(self):
        tree, _ = make_tree()
        for i in range(10):
            tree.insert(encode_int(i), b"v")
        assert len(tree) == 10


class TestSplitsAndGrowth:
    def test_many_inserts_force_splits(self):
        tree, _ = make_tree(page_size=256)
        for i in range(500):
            tree.insert(encode_int(i), b"v%d" % i)
        assert tree.height > 1
        assert len(tree) == 500
        tree.check_invariants()

    def test_reverse_insert_order(self):
        tree, _ = make_tree(page_size=256)
        for i in reversed(range(300)):
            tree.insert(encode_int(i), b"x")
        assert [k for k, _ in tree.items()] == [encode_int(i)
                                                for i in range(300)]
        tree.check_invariants()

    def test_random_insert_order(self):
        tree, _ = make_tree(page_size=256)
        keys = list(range(400))
        random.Random(1).shuffle(keys)
        for key in keys:
            tree.insert(encode_int(key), str(key).encode())
        for key in keys:
            assert tree.search(encode_int(key)) == str(key).encode()
        tree.check_invariants()


class TestDuplicates:
    def test_duplicate_keys_all_returned(self):
        tree, _ = make_tree()
        for i in range(5):
            tree.insert(encode_int(7), b"v%d" % i)
        values = [v for _, v in tree.range_scan(encode_int(7), encode_int(7),
                                                inclusive_hi=True)]
        assert sorted(values) == [b"v0", b"v1", b"v2", b"v3", b"v4"]

    def test_duplicates_across_splits(self):
        tree, _ = make_tree(page_size=256)
        for i in range(200):
            tree.insert(encode_int(50), b"d%03d" % i)
        count = tree.count_range(encode_int(50), encode_int(50),
                                 inclusive_hi=True)
        assert count == 200
        tree.check_invariants()


class TestRangeScans:
    def test_half_open_range(self):
        tree, _ = make_tree()
        for i in range(20):
            tree.insert(encode_int(i), b"")
        keys = [k for k, _ in tree.range_scan(encode_int(5), encode_int(10))]
        assert keys == [encode_int(i) for i in range(5, 10)]

    def test_inclusive_range(self):
        tree, _ = make_tree()
        for i in range(20):
            tree.insert(encode_int(i), b"")
        keys = [k for k, _ in tree.range_scan(encode_int(5), encode_int(10),
                                              inclusive_hi=True)]
        assert keys == [encode_int(i) for i in range(5, 11)]

    def test_open_ended_scan(self):
        tree, _ = make_tree()
        for i in (3, 1, 2):
            tree.insert(encode_int(i), b"")
        assert [k for k, _ in tree.range_scan(encode_int(2), None)] == [
            encode_int(2), encode_int(3)]

    def test_scan_empty_range(self):
        tree, _ = make_tree()
        tree.insert(encode_int(1), b"")
        assert list(tree.range_scan(encode_int(5), encode_int(9))) == []

    def test_scan_crosses_leaves(self):
        tree, _ = make_tree(page_size=256)
        for i in range(300):
            tree.insert(encode_int(i), b"")
        keys = [k for k, _ in tree.range_scan(encode_int(10),
                                              encode_int(290))]
        assert len(keys) == 280


class TestDelete:
    def test_delete_existing(self):
        tree, _ = make_tree()
        tree.insert(encode_int(1), b"x")
        tree.delete(encode_int(1))
        assert not tree.contains(encode_int(1))
        assert len(tree) == 0

    def test_delete_missing_raises(self):
        tree, _ = make_tree()
        with pytest.raises(KeyNotFoundError):
            tree.delete(encode_int(9))

    def test_delete_specific_value(self):
        tree, _ = make_tree()
        tree.insert(encode_int(1), b"a")
        tree.insert(encode_int(1), b"b")
        tree.delete(encode_int(1), value=b"b")
        values = [v for _, v in tree.range_scan(encode_int(1), encode_int(1),
                                                inclusive_hi=True)]
        assert values == [b"a"]

    def test_delete_across_leaves(self):
        tree, _ = make_tree(page_size=256)
        for i in range(300):
            tree.insert(encode_int(i), b"")
        for i in range(0, 300, 2):
            tree.delete(encode_int(i))
        assert len(tree) == 150
        remaining = [k for k, _ in tree.items()]
        assert remaining == [encode_int(i) for i in range(1, 300, 2)]


class TestBulkLoad:
    def test_bulk_load_matches_inserts(self):
        pool = BufferPool(Pager.in_memory(page_size=256))
        pairs = [(encode_int(i), b"v%d" % i) for i in range(500)]
        tree = BPlusTree.bulk_load(pool, pairs)
        assert len(tree) == 500
        assert [k for k, _ in tree.items()] == [p[0] for p in pairs]
        tree.check_invariants()

    def test_bulk_load_empty(self):
        pool = BufferPool(Pager.in_memory(page_size=256))
        tree = BPlusTree.bulk_load(pool, [])
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_bulk_load_rejects_unsorted(self):
        pool = BufferPool(Pager.in_memory(page_size=256))
        with pytest.raises(ValueError):
            BPlusTree.bulk_load(pool, [(encode_int(2), b""),
                                       (encode_int(1), b"")])

    def test_bulk_load_then_insert(self):
        pool = BufferPool(Pager.in_memory(page_size=256))
        pairs = [(encode_int(i * 2), b"") for i in range(200)]
        tree = BPlusTree.bulk_load(pool, pairs)
        for i in range(50):
            tree.insert(encode_int(i * 2 + 1), b"odd")
        assert len(tree) == 250
        tree.check_invariants()

    def test_bulk_load_with_duplicates(self):
        pool = BufferPool(Pager.in_memory(page_size=256))
        pairs = [(encode_int(1), b"a")] * 100 + [(encode_int(2), b"b")] * 50
        tree = BPlusTree.bulk_load(pool, pairs)
        assert tree.count_range(encode_int(1), encode_int(1),
                                inclusive_hi=True) == 100
        tree.check_invariants()


class TestMultipleTreesOnePool:
    def test_two_trees_coexist(self):
        pool = BufferPool(Pager.in_memory(page_size=256))
        tree_a = BPlusTree.create(pool)
        tree_b = BPlusTree.create(pool)
        for i in range(100):
            tree_a.insert(encode_int(i), b"a")
            tree_b.insert(encode_int(i), b"b")
        assert all(v == b"a" for _, v in tree_a.items())
        assert all(v == b"b" for _, v in tree_b.items())

    def test_attach_by_meta_page(self):
        pool = BufferPool(Pager.in_memory(page_size=256))
        tree = BPlusTree.create(pool)
        tree.insert(encode_int(1), b"x")
        again = BPlusTree.attach(pool, tree.meta_page_id)
        assert again.search(encode_int(1)) == b"x"


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.booleans(),
                          st.integers(min_value=0, max_value=60)),
                max_size=150))
def test_bptree_matches_model_under_mixed_workload(operations):
    """Property test: tree behaves like a sorted multimap."""
    tree, _ = make_tree(page_size=256)
    model = []
    for is_insert, key in operations:
        if is_insert:
            tree.insert(encode_int(key), str(key).encode())
            model.append(key)
        else:
            if key in model:
                tree.delete(encode_int(key))
                model.remove(key)
            else:
                with pytest.raises(KeyNotFoundError):
                    tree.delete(encode_int(key))
    assert [k for k, _ in tree.items()] == [encode_int(k)
                                            for k in sorted(model)]
    tree.check_invariants()
