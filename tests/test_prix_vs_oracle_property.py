"""Differential property tests: the PRIX pipeline against the oracle.

These are the repository's strongest correctness guarantees: for random
corpora and random twigs (child/descendant axes, stars, values, absolute
anchors), both index variants, MaxGap on and off, and both match
semantics, the engine's answer set equals the exhaustive oracle's --
no false alarms, no false dismissals (Theorems 1-4 end to end).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_random_tree, make_random_twig
from repro.baselines.naive import naive_matches
from repro.prix.index import PrixIndex
from repro.xmlkit.tree import Document


def build_case(seed, n_docs=3, max_tree_nodes=14, max_twig_nodes=5):
    rng = random.Random(seed)
    docs = [Document(make_random_tree(rng, max_nodes=max_tree_nodes),
                     doc_id=i + 1) for i in range(n_docs)]
    pattern = make_random_twig(rng, max_nodes=max_twig_nodes)
    return docs, pattern


def oracle_set(docs, pattern, ordered=False):
    return {(d.doc_id, emb) for d in docs
            for emb in naive_matches(d, pattern, ordered=ordered)}


def engine_set(index, pattern, **kwargs):
    return {(m.doc_id, m.canonical)
            for m in index.query(pattern, **kwargs)}


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_rp_variant_matches_oracle(seed):
    docs, pattern = build_case(seed)
    index = PrixIndex.build(docs)
    assert engine_set(index, pattern, variant="rp") == oracle_set(
        docs, pattern)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_ep_variant_matches_oracle(seed):
    docs, pattern = build_case(seed)
    index = PrixIndex.build(docs)
    assert engine_set(index, pattern, variant="ep") == oracle_set(
        docs, pattern)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_maxgap_pruning_is_lossless(seed):
    docs, pattern = build_case(seed)
    index = PrixIndex.build(docs)
    pruned = engine_set(index, pattern, use_maxgap=True)
    unpruned = engine_set(index, pattern, use_maxgap=False)
    assert pruned == unpruned == oracle_set(docs, pattern)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_ordered_semantics_matches_oracle(seed):
    docs, pattern = build_case(seed)
    index = PrixIndex.build(docs)
    got = engine_set(index, pattern, ordered=True)
    want = oracle_set(docs, pattern, ordered=True)
    assert got == want


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_ordered_subset_of_unordered(seed):
    docs, pattern = build_case(seed)
    index = PrixIndex.build(docs)
    assert engine_set(index, pattern, ordered=True) <= engine_set(
        index, pattern, ordered=False)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_larger_trees_still_agree(seed):
    docs, pattern = build_case(seed, n_docs=2, max_tree_nodes=40,
                               max_twig_nodes=6)
    index = PrixIndex.build(docs)
    assert engine_set(index, pattern) == oracle_set(docs, pattern)
