"""Region encoding and disk stream tests."""

from repro.baselines.region import (DiskStream, Element, StreamSet,
                                    build_stream_entries)
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.xmlkit.parser import parse_document


def make_pool(page_size=256):
    return BufferPool(Pager.in_memory(page_size=page_size))


class TestElement:
    def test_containment(self):
        outer = Element(1, 10, 1, 1, 5)
        inner = Element(2, 5, 2, 1, 2)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_parenthood_requires_level(self):
        outer = Element(1, 10, 1, 1, 5)
        deep = Element(2, 5, 3, 1, 2)
        assert outer.contains(deep)
        assert not outer.is_parent_of(deep)
        child = Element(2, 5, 2, 1, 2)
        assert outer.is_parent_of(child)


class TestBuildStreams:
    def test_streams_sorted_by_start(self):
        docs = [parse_document("<a><b/><b/><c><b/></c></a>", 1),
                parse_document("<a><b/></a>", 2)]
        streams = build_stream_entries(docs)
        for entries in streams.values():
            starts = [e.start for e in entries]
            assert starts == sorted(starts)

    def test_global_offsets_prevent_cross_doc_containment(self):
        docs = [parse_document("<a><b/></a>", 1),
                parse_document("<a><b/></a>", 2)]
        streams = build_stream_entries(docs)
        a_entries = streams["a"]
        b_entries = streams["b"]
        for a_entry in a_entries:
            for b_entry in b_entries:
                if a_entry.contains(b_entry):
                    assert a_entry.doc_id == b_entry.doc_id

    def test_value_nodes_get_prefixed_streams(self):
        docs = [parse_document("<a>hello</a>", 1)]
        streams = build_stream_entries(docs)
        assert "\x1fhello" in streams

    def test_postorder_recorded(self):
        docs = [parse_document("<a><b/></a>", 1)]
        streams = build_stream_entries(docs)
        assert streams["b"][0].postorder == 1
        assert streams["a"][0].postorder == 2


class TestDiskStream:
    def test_roundtrip(self):
        pool = make_pool()
        entries = [Element(i * 2 + 1, i * 2 + 2, 1, 1, i + 1)
                   for i in range(50)]
        stream = DiskStream.write(pool, entries)
        cursor = stream.cursor()
        read_back = []
        while cursor.head() is not None:
            read_back.append(cursor.head())
            cursor.advance()
        assert read_back == entries

    def test_empty_stream(self):
        pool = make_pool()
        stream = DiskStream.write(pool, [])
        assert stream.cursor().head() is None

    def test_spans_pages(self):
        pool = make_pool(page_size=256)
        entries = [Element(i, i + 1, 1, 1, i) for i in range(1, 100)]
        stream = DiskStream.write(pool, entries)
        assert len(stream._page_ids) > 1
        cursor = stream.cursor()
        count = 0
        while cursor.head() is not None:
            count += 1
            cursor.advance()
        assert count == 99

    def test_reads_counted(self):
        pool = make_pool(page_size=256)
        entries = [Element(i, i + 1, 1, 1, i) for i in range(1, 100)]
        stream = DiskStream.write(pool, entries)
        pool.flush_and_clear()
        before = pool.stats.physical_reads
        cursor = stream.cursor()
        while cursor.head() is not None:
            cursor.advance()
        assert pool.stats.physical_reads - before == len(stream._page_ids)


class TestStreamSet:
    def test_unknown_tag_gives_empty_stream(self):
        pool = make_pool()
        streams = StreamSet.build([parse_document("<a/>", 1)], pool)
        assert streams.stream("nope").cursor().head() is None

    def test_tags_listed(self):
        pool = make_pool()
        streams = StreamSet.build(
            [parse_document("<a><b/></a>", 1)], pool)
        assert streams.tags() == ["a", "b"]
