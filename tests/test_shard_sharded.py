"""Behavioural tests for :class:`ShardedIndex` (docs/SHARDING.md).

Scatter-gather equivalence, budget splitting and headroom carry,
degradation soundness, routed incremental maintenance, rebalance and
compaction generations, and the directory scrub verdicts.
"""

import json
import os

import pytest

from repro.datasets import dblp
from repro.prix.budget import (PHASE_FILTER, PHASE_REFINEMENT,
                               BudgetExceededError, QueryBudget)
from repro.prix.incremental import RebuildRequiredError
from repro.prix.index import IndexOptions, PrixIndex
from repro.shard import (ShardCatalog, ShardedIndex, build_shards,
                         compact, rebalance, scrub_shards)
from repro.xmlkit.parser import parse_document

PATTERN = "//inproceedings//author"


@pytest.fixture(scope="module")
def corpus():
    return dblp(n_records=60, seed=3).documents


@pytest.fixture(scope="module")
def monolith(corpus):
    index = PrixIndex.build(corpus)
    yield index
    index.close()


@pytest.fixture
def shard_dir(corpus, tmp_path):
    target = str(tmp_path / "shards")
    build_shards(corpus, target, shards=4)
    return target


def canonical(matches):
    return [(m.doc_id, m.images) for m in matches]


class TestScatterGather:
    def test_matches_monolith_exactly(self, corpus, monolith, shard_dir):
        with ShardedIndex.open(shard_dir) as sharded:
            assert canonical(sharded.query(PATTERN)) == \
                canonical(sorted(monolith.query(PATTERN),
                                 key=lambda m: (m.doc_id, m.images)))

    def test_both_variants_agree(self, monolith, shard_dir):
        with ShardedIndex.open(shard_dir) as sharded:
            for variant in ("rp", "ep"):
                assert canonical(sharded.query(PATTERN, variant=variant)) \
                    == canonical(sorted(
                        monolith.query(PATTERN, variant=variant),
                        key=lambda m: (m.doc_id, m.images)))

    def test_stats_carry_shard_breakdown(self, shard_dir):
        with ShardedIndex.open(shard_dir) as sharded:
            matches, stats = sharded.query_with_stats(PATTERN)
            assert stats.shards == 4
            assert len(stats.per_shard) == 4
            assert sum(row["matches"] for row in stats.per_shard) == \
                len(matches)
            assert stats.matches == len(matches)

    def test_counters_track_queries(self, shard_dir):
        with ShardedIndex.open(shard_dir) as sharded:
            sharded.query(PATTERN)
            sharded.query(PATTERN)
            scatter = sharded.scatter_stats()
            assert scatter["queries"] == 2
            assert scatter["approximate_queries"] == 0
            assert all(row["queries"] == 2
                       for row in sharded.shard_stats())

    def test_doc_count_and_export_round_trip(self, corpus, shard_dir):
        with ShardedIndex.open(shard_dir) as sharded:
            assert sharded.doc_count == len(corpus)
            exported = [doc.doc_id for doc in sharded.export_documents()]
            assert exported == sorted(doc.doc_id for doc in corpus)

    def test_rejects_non_budget_budget(self, shard_dir):
        with ShardedIndex.open(shard_dir) as sharded:
            with pytest.raises(TypeError):
                sharded.query(PATTERN, budget=object())


class TestBudgets:
    def test_generous_budget_is_identity(self, monolith, shard_dir):
        with ShardedIndex.open(shard_dir) as sharded:
            exact = sharded.query(PATTERN)
            budgeted = sharded.query(PATTERN, budget=QueryBudget(
                max_range_queries=100_000, max_candidates=100_000,
                max_physical_reads=100_000))
            assert not budgeted.approximate
            assert canonical(budgeted) == canonical(exact)

    def test_refinement_exhaustion_is_sound_superset(self, shard_dir):
        with ShardedIndex.open(shard_dir) as sharded:
            exact = sharded.query(PATTERN)
            degraded = sharded.query(
                PATTERN, budget=QueryBudget(max_candidates=1))
            assert degraded.approximate
            assert degraded.degradation_reason.phase == PHASE_REFINEMENT
            assert set(degraded.doc_ids) >= set(exact.doc_ids)
            # Doc-level rows: no verified embeddings survive the merge.
            assert all(match.images == () for match in degraded)

    def test_filter_exhaustion_is_a_hard_error(self, shard_dir):
        with ShardedIndex.open(shard_dir) as sharded:
            with pytest.raises(BudgetExceededError) as caught:
                sharded.query(PATTERN,
                              budget=QueryBudget(max_range_queries=0))
            assert caught.value.reason.phase == PHASE_FILTER

    def test_headroom_carries_forward(self, tmp_path):
        # Skewed corpus: all the matching documents live in the LAST
        # shard, so an evenly split candidate cap is individually too
        # small for it -- only the unused headroom carried forward from
        # the empty early shards makes the final shard viable.
        docs = [parse_document("<r><z/></r>", doc_id=i + 1)
                for i in range(6)]
        docs += [parse_document("<r><a><b/></a><a><b/></a></r>",
                                doc_id=7 + i) for i in range(2)]
        target = str(tmp_path / "skew")
        build_shards(docs, target, shards=4)
        with ShardedIndex.open(target) as sharded:
            exact = sharded.query("//a/b")
            _, stats = sharded.query_with_stats("//a/b")
            needs = [row["candidates_refined"]
                     for row in stats.per_shard]
            assert needs[-1] > 0 and sum(needs[:-1]) == 0
            # Total cap == exactly what the last shard needs: its own
            # split share is strictly smaller, so exactness proves the
            # early shards' surplus was granted forward.
            budgeted = sharded.query("//a/b", budget=QueryBudget(
                max_candidates=needs[-1]))
            assert not budgeted.approximate
            assert canonical(budgeted) == canonical(exact)


def maintenance_documents(n=8):
    docs = [parse_document(
        f"<a><b><c/></b><d>v{i}</d></a>", doc_id=i + 1) for i in range(n)]
    return docs


def maintenance_options():
    return IndexOptions(labeler="dynamic", alpha=4)


class TestMaintenance:
    def build(self, tmp_path, shards=2):
        target = str(tmp_path / "mshards")
        build_shards(maintenance_documents(), target, shards=shards,
                     options=maintenance_options())
        return target

    def test_insert_routes_and_widens_range(self, tmp_path):
        target = self.build(tmp_path)
        with ShardedIndex.open(target) as sharded:
            sharded.insert_document(parse_document(
                "<a><b><c/></b><d>v9</d></a>", doc_id=99))
            assert sharded.doc_count == 9
            assert len(sharded.query("//a/d")) == 9
        # The widened range and count survived the manifest republish.
        catalog = ShardCatalog.load(target)
        assert catalog.shard_for(99) is not None
        assert catalog.doc_count == 9

    def test_delete_routes_and_refreshes_count(self, tmp_path):
        target = self.build(tmp_path)
        with ShardedIndex.open(target) as sharded:
            sharded.delete_document(3)
            assert sharded.doc_count == 7
            assert 3 not in {m.doc_id for m in sharded.query("//a/d")}
            with pytest.raises(KeyError):
                sharded.delete_document(12345)
        assert ShardCatalog.load(target).doc_count == 7

    def test_insert_into_bulk_shards_requires_rebuild(self, corpus,
                                                      tmp_path):
        target = str(tmp_path / "bulk")
        build_shards(corpus, target, shards=2)
        with ShardedIndex.open(target) as sharded:
            with pytest.raises(RebuildRequiredError):
                sharded.insert_document(parse_document(
                    "<a><b/></a>", doc_id=10_000))


class TestRebalance:
    def test_resharding_preserves_answers(self, corpus, monolith,
                                          shard_dir):
        report = rebalance(shard_dir, shards=2)
        assert report.shards == 2
        assert report.generation == 2
        catalog = ShardCatalog.load(shard_dir)
        assert catalog.generation == 2
        assert len(catalog.entries) == 2
        with ShardedIndex.open(shard_dir) as sharded:
            assert canonical(sharded.query(PATTERN)) == \
                canonical(sorted(monolith.query(PATTERN),
                                 key=lambda m: (m.doc_id, m.images)))

    def test_identity_rebalance_reuses_shards(self, shard_dir):
        report = rebalance(shard_dir, shards=4)
        assert report.reused == 4
        assert report.rebuilt == 0

    def test_old_generation_files_are_removed(self, shard_dir):
        before = {name for name in os.listdir(shard_dir)
                  if name.endswith(".idx")}
        rebalance(shard_dir, shards=2)
        after = {name for name in os.listdir(shard_dir)
                 if name.endswith(".idx")}
        assert len(after) == 2
        assert not (before & after)

    def test_compact_rebuilds_every_shard(self, corpus, shard_dir):
        report = compact(shard_dir)
        assert report.rebuilt == 4
        assert report.reused == 0
        with ShardedIndex.open(shard_dir) as sharded:
            assert sharded.doc_count == len(corpus)


class TestScrub:
    def test_healthy_directory(self, shard_dir):
        report = scrub_shards(shard_dir)
        assert report.healthy
        assert report.as_dict()["catalog_ok"]
        assert report.as_dict()["index_count"] == 4

    def test_missing_shard_file_is_unhealthy(self, shard_dir):
        catalog = ShardCatalog.load(shard_dir)
        os.unlink(catalog.path_for(catalog.entries[0]))
        report = scrub_shards(shard_dir)
        assert not report.healthy
        assert "missing" in (report.manifest_error or "")

    def test_tampered_manifest_is_unhealthy(self, shard_dir):
        manifest = os.path.join(shard_dir, "prixshard.json")
        with open(manifest, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["shards"][0]["doc_count"] += 1  # checksum now stale
        with open(manifest, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        report = scrub_shards(shard_dir)
        assert not report.healthy
        assert not report.manifest_ok
        assert "checksum" in (report.manifest_error or "")
