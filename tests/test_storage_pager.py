"""Pager unit tests."""

import pytest

from repro.storage.errors import PageNotFoundError, PageRangeError
from repro.storage.pager import DEFAULT_PAGE_SIZE, Pager


class TestAllocation:
    def test_starts_empty(self):
        with Pager.in_memory() as pager:
            assert pager.num_pages == 0

    def test_allocate_returns_sequential_ids(self):
        with Pager.in_memory() as pager:
            assert [pager.allocate() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_allocation_counted(self):
        with Pager.in_memory() as pager:
            pager.allocate()
            assert pager.stats.allocations == 1


class TestReadWrite:
    def test_write_then_read(self):
        with Pager.in_memory(page_size=128) as pager:
            pid = pager.allocate()
            payload = bytes(range(128))
            pager.write(pid, payload)
            assert bytes(pager.read(pid)) == payload

    def test_new_page_is_zeroed(self):
        with Pager.in_memory(page_size=64) as pager:
            pid = pager.allocate()
            assert bytes(pager.read(pid)) == b"\x00" * 64

    def test_read_counts_physical_io(self):
        with Pager.in_memory() as pager:
            pid = pager.allocate()
            pager.read(pid)
            pager.read(pid)
            assert pager.stats.physical_reads == 2

    def test_write_counts_physical_io(self):
        with Pager.in_memory(page_size=32) as pager:
            pid = pager.allocate()
            pager.write(pid, b"\x01" * 32)
            assert pager.stats.physical_writes == 1

    def test_read_unallocated_raises(self):
        with Pager.in_memory() as pager:
            with pytest.raises(PageNotFoundError):
                pager.read(0)

    def test_write_wrong_size_raises(self):
        with Pager.in_memory(page_size=64) as pager:
            pid = pager.allocate()
            with pytest.raises(ValueError):
                pager.write(pid, b"short")

    def test_default_page_size_matches_paper(self):
        assert DEFAULT_PAGE_SIZE == 8192


class TestFileBacked:
    def test_open_create_write_reopen(self, tmp_path):
        path = str(tmp_path / "store.db")
        with Pager.open(path, page_size=64) as pager:
            pid = pager.allocate()
            pager.write(pid, b"\x07" * 64)
            pager.sync()
        with Pager.open(path, page_size=64) as pager:
            assert pager.num_pages == 1
            assert bytes(pager.read(pid)) == b"\x07" * 64

    def test_reopen_with_wrong_page_size_raises(self, tmp_path):
        path = str(tmp_path / "store.db")
        with Pager.open(path, page_size=64) as pager:
            pager.allocate()
            pager.sync()
        with pytest.raises(ValueError):
            Pager.open(path, page_size=48)


class TestPageRange:
    """Out-of-range page ids raise the typed PageRangeError -- which is
    both a PageNotFoundError (storage taxonomy) and an IndexError
    (sequence idiom), so either catch-site keeps working."""

    def test_read_past_end_raises_page_range_error(self):
        with Pager.in_memory(page_size=64) as pager:
            pager.allocate()
            with pytest.raises(PageRangeError):
                pager.read(1)

    def test_write_past_end_raises_page_range_error(self):
        with Pager.in_memory(page_size=64) as pager:
            pager.allocate()
            with pytest.raises(PageRangeError):
                pager.write(5, b"\x00" * 64)

    def test_negative_page_id_raises(self):
        with Pager.in_memory(page_size=64) as pager:
            pager.allocate()
            with pytest.raises(PageRangeError):
                pager.read(-1)

    def test_range_error_is_page_not_found(self):
        with Pager.in_memory(page_size=64) as pager:
            with pytest.raises(PageNotFoundError):
                pager.read(0)

    def test_range_error_is_index_error(self):
        with Pager.in_memory(page_size=64) as pager:
            with pytest.raises(IndexError):
                pager.read(0)

    def test_error_names_the_bounds(self):
        with Pager.in_memory(page_size=64) as pager:
            pager.allocate()
            with pytest.raises(PageRangeError, match=r"\[0, 1\)"):
                pager.write(9, b"\x00" * 64)

    def test_non_int_page_id_rejected(self):
        with Pager.in_memory(page_size=64) as pager:
            pager.allocate()
            with pytest.raises(PageRangeError):
                pager.read(True)

    def test_in_range_unaffected(self):
        with Pager.in_memory(page_size=64) as pager:
            pid = pager.allocate()
            pager.write(pid, b"\x01" * 64)
            assert bytes(pager.read(pid)) == b"\x01" * 64


class TestBackendSubstrates:
    """Pager-level edges driven through the StorageBackend seam.

    The ``make_backend`` fixture parametrizes every test here over
    FilePagerBackend and InMemoryArenaBackend; the assertions use exact
    counter values, so the two substrates must move IOStats
    identically, not merely similarly.
    """

    def test_new_page_ids_sequential(self, make_backend):
        backend = make_backend(page_size=64)
        assert [backend.new_page()[0] for _ in range(4)] == [0, 1, 2, 3]

    def test_new_page_zeroed(self, make_backend):
        backend = make_backend(page_size=64)
        _, frame = backend.new_page()
        assert bytes(frame) == b"\x00" * 64

    def test_put_get_roundtrip_through_cold_cache(self, make_backend):
        backend = make_backend(page_size=64)
        pid, _ = backend.new_page()
        payload = bytes(range(64))
        backend.put(pid, payload)
        backend.flush_and_clear()
        assert bytes(backend.get(pid)) == payload

    def test_get_out_of_range_raises_typed_error(self, make_backend):
        backend = make_backend(page_size=64)
        backend.new_page()
        with pytest.raises(PageRangeError):
            backend.get(7)

    def test_non_int_page_id_rejected(self, make_backend):
        backend = make_backend(page_size=64)
        backend.new_page()
        with pytest.raises(PageRangeError):
            backend.get(True)

    def test_negative_page_id_rejected(self, make_backend):
        backend = make_backend(page_size=64)
        backend.new_page()
        with pytest.raises(PageRangeError):
            backend.get(-1)

    def test_range_error_is_page_not_found(self, make_backend):
        backend = make_backend(page_size=64)
        with pytest.raises(PageNotFoundError):
            backend.get(0)

    def test_allocations_counted(self, make_backend):
        backend = make_backend(page_size=64)
        backend.new_page()
        backend.new_page()
        assert backend.stats.allocations == 2

    def test_physical_reads_counted_after_cold_clear(self, make_backend):
        backend = make_backend(page_size=64)
        pid, _ = backend.new_page()
        backend.flush_and_clear()
        backend.get(pid)
        backend.get(pid)
        assert backend.stats.physical_reads == 1
        assert backend.stats.logical_reads == 2

    def test_num_pages_tracks_allocation(self, make_backend):
        backend = make_backend(page_size=64)
        assert backend.num_pages == 0
        backend.new_page()
        backend.flush()
        assert backend.num_pages == 1

    def test_page_size_exposed(self, make_backend):
        backend = make_backend(page_size=128)
        assert backend.page_size == 128
