"""Stateful property test: an index maintained by inserts and deletes is
always equivalent to one built from scratch over the same documents."""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, precondition, rule)

from helpers import make_random_tree
from repro.prix.incremental import RebuildRequiredError
from repro.prix.index import IndexOptions, PrixIndex
from repro.query.xpath import parse_xpath
from repro.xmlkit.tree import Document

PROBE_QUERIES = [parse_xpath(xpath) for xpath in
                 ("//a/b", "//a//c", "//b[./a]", "//c/*", '//a[./d="v1"]',
                  "//d//d")]

DYNAMIC = IndexOptions(labeler="dynamic", alpha=4)


def answers(index, pattern):
    return {(m.doc_id, m.canonical) for m in index.query(pattern)}


class IndexMaintenanceMachine(RuleBasedStateMachine):
    """Insert/delete random documents; the live index must always agree
    with a from-scratch build over the current document set."""

    @initialize(seed=st.integers(min_value=0, max_value=2 ** 31))
    def setup(self, seed):
        self.rng = random.Random(seed)
        self.documents = {}
        self.next_id = 1
        first = self._new_document()
        self.index = PrixIndex.build([first], DYNAMIC)
        self.documents[first.doc_id] = first

    def _new_document(self):
        document = Document(
            make_random_tree(self.rng, max_nodes=10, tags="abcd",
                             values=("v1", "v2")),
            doc_id=self.next_id)
        self.next_id += 1
        return document

    @rule()
    def insert(self):
        document = self._new_document()
        try:
            self.index.insert_document(document)
            self.documents[document.doc_id] = document
        except RebuildRequiredError:
            # Documented recovery path: the record is already cataloged,
            # so the rebuilt index contains the document.
            self.documents[document.doc_id] = document
            self.index = self.index.rebuilt(DYNAMIC)

    @precondition(lambda self: len(self.documents) > 1)
    @rule()
    def delete(self):
        doc_id = self.rng.choice(sorted(self.documents))
        self.index.delete_document(doc_id)
        del self.documents[doc_id]

    @rule()
    def rebuild(self):
        if self.documents:
            self.index = self.index.rebuilt(DYNAMIC)

    @invariant()
    def agrees_with_fresh_build(self):
        if not self.documents:
            return
        fresh = PrixIndex.build(list(self.documents.values()), DYNAMIC)
        for pattern in PROBE_QUERIES:
            assert answers(self.index, pattern) == answers(fresh, pattern)


IndexMaintenanceMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=8, deadline=None)
TestIndexMaintenance = IndexMaintenanceMachine.TestCase
