"""Self-check: the shipped tree must satisfy its own linter.

This is the acceptance gate from the issue: ``prix lint src/repro``
exits 0, the grandfather baseline covers the whole repository, and a
deliberately introduced violation (raw ``open()`` in the storage layer,
unseeded RNG in a dataset generator) makes the lint fail.
"""

import shutil
from pathlib import Path

from repro.analysis import lint_paths, load_baseline
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / ".prixlint-baseline.json"


class TestTreeIsClean:
    def test_src_repro_is_clean_under_all_rules(self):
        result = lint_paths([SRC])
        messages = [f"{f.path}:{f.line}: {f.rule}: {f.message}"
                    for f in result.findings]
        assert result.findings == [], "\n".join(messages)
        assert result.errors == []
        assert result.files_checked > 50  # the whole package was seen

    def test_benchmarks_and_examples_are_clean(self):
        result = lint_paths([REPO_ROOT / "benchmarks",
                             REPO_ROOT / "examples"])
        messages = [f"{f.path}:{f.line}: {f.rule}" for f in result.findings]
        assert result.findings == [], "\n".join(messages)

    def test_full_tree_clean_under_checked_in_baseline(self):
        result = lint_paths(
            [SRC, REPO_ROOT / "benchmarks", REPO_ROOT / "examples",
             REPO_ROOT / "tests"],
            baseline=load_baseline(BASELINE))
        messages = [f"{f.path}:{f.line}: {f.rule}" for f in result.findings]
        assert result.findings == [], "\n".join(messages)


class TestViolationsAreCaught:
    """Copy src/repro aside, break an invariant, watch the lint fail."""

    def corrupt_and_lint(self, tmp_path, relative, mutate):
        workdir = tmp_path / "src" / "repro"
        shutil.copytree(SRC, workdir)
        target = workdir / relative
        target.write_text(mutate(target.read_text()))
        return lint_paths([workdir])

    def test_raw_open_in_bptree_fails_lint(self, tmp_path):
        result = self.corrupt_and_lint(
            tmp_path, Path("storage") / "bptree.py",
            lambda text: text + "\n_FH = open('/tmp/leak.bin', 'wb')\n")
        assert any(f.rule == "no-raw-io" for f in result.findings)
        assert result.exit_code == 1

    def test_unseeded_rng_in_dataset_generator_fails_lint(self, tmp_path):
        result = self.corrupt_and_lint(
            tmp_path, Path("datasets") / "dblp.py",
            lambda text: text.replace("rng = random.Random(seed)",
                                      "rng = random.Random()"))
        assert any(f.rule == "seeded-rng" for f in result.findings)
        assert result.exit_code == 1

    def test_float_into_counter_fails_lint(self, tmp_path):
        result = self.corrupt_and_lint(
            tmp_path, Path("storage") / "pager.py",
            lambda text: text.replace("self.stats.add(physical_reads=1)",
                                      "self.stats.add(physical_reads=1.0)"))
        assert any(f.rule == "stats-int-discipline"
                   for f in result.findings)

    def test_cli_exit_code_propagates(self, tmp_path, capsys):
        workdir = tmp_path / "src" / "repro"
        shutil.copytree(SRC, workdir)
        bptree = workdir / "storage" / "bptree.py"
        bptree.write_text(bptree.read_text()
                          + "\n_FH = open('/tmp/leak.bin', 'wb')\n")
        assert cli_main(["lint", str(workdir)]) == 1
        capsys.readouterr()
