"""The chaos matrix: a live server over fault-injecting storage.

``prix serve`` runs over a :class:`~repro.storage.faults.ChaosBackend`
whose deterministic schedule throws transient read errors, injected
latency, fail-then-heal windows, and checksum-corrupting reads at the
query path, across seeds x fault mixes x client thread counts.  The
**robustness oracle** (docs/ROBUSTNESS.md) holds for every raw
response:

- a ``200`` exact answer is *byte-identical* to the fault-free direct
  index answer (canonical protocol serialization);
- a ``200 approximate=True`` answer is a sound superset of the exact
  doc ids (Theorems 1-2);
- everything else is a *typed* protocol error -- a known code with its
  contracted HTTP status -- never a silent wrong answer, a hang, or a
  crash.

And the convergence arm: a :class:`~repro.serve.client.PrixServeClient`
following the retry discipline ends up with answers byte-identical to
the fault-free run, for every seed and mix.

Also live here: the slow-loris socket timeout (typed 408), the
``X-Prix-Deadline-Ms`` deadline propagation (typed 429 whose detail
blames the deadline), and the per-mount circuit breaker's full
open -> half-open -> re-scrub -> closed arc over a healing fault storm.

Runs unchanged under ``PRIX_SANITIZE=1``.  Environment knobs:

- ``PRIX_CHAOS_SEEDS``: comma-separated schedule seeds (default three).
- ``PRIX_CHAOS_THREADS``: comma-separated client thread counts.
- ``PRIX_CHAOS_ARTIFACT``: path for the JSON evidence bundle a failing
  cell writes (the CI job uploads it).
"""

import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.bench.workloads import queries_for
from repro.datasets.dblp import dblp
from repro.prix.index import IndexOptions, PrixIndex
from repro.serve import protocol
from repro.serve.client import PrixServeClient
from repro.serve.protocol import DEADLINE_HEADER, ERROR_KINDS
from repro.serve.server import build_server
from repro.storage import ChaosConfig

SEEDS = [int(seed) for seed in
         os.environ.get("PRIX_CHAOS_SEEDS", "101,202,303").split(",")]
THREAD_COUNTS = [int(t) for t in
                 os.environ.get("PRIX_CHAOS_THREADS", "2,8").split(",")]
ARTIFACT = os.environ.get("PRIX_CHAOS_ARTIFACT")
QUERIES = [(spec.qid, spec.xpath) for spec in queries_for("dblp")]

POOL_PAGES = 256

#: Fault mixes, sized against the measured per-query read counts
#: (4-14 logical reads each): high enough that most cells see faults,
#: low enough that a retrying client converges with margin.
MIXES = {
    "transient-storm": dict(read_error_period=30, latency_period=11,
                            latency_ms=0.2, fail_first=6),
    "corrupting": dict(read_error_period=40, corrupt_period=40,
                       latency_period=17, latency_ms=0.1),
}


@pytest.fixture(scope="module")
def index_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("chaos-matrix") / "chaos.prix")
    index = PrixIndex.build(dblp(n_records=30, seed=13),
                            IndexOptions(path=path, pool_pages=POOL_PAGES))
    index.save()
    index.close()
    return path


@pytest.fixture(scope="module")
def reference(index_path):
    """Fault-free direct-index ground truth, as canonical wire bytes."""
    answers = {}
    with PrixIndex.open(index_path, pool_pages=POOL_PAGES,
                        backend="file") as index:
        for qid, xpath in QUERIES:
            request = protocol.QueryRequest(xpath=xpath)
            matches, stats = index.query_with_stats(xpath)
            answers[qid] = {
                "canonical": canonical_answer(
                    protocol.result_payload(request, matches, stats, 1)),
                "doc_ids": list(matches.doc_ids),
            }
    return answers


@contextmanager
def live_server(path, *, chaos=None, request_timeout=30.0,
                circuit_threshold=10 ** 6, circuit_cooldown=0.2):
    server = build_server([("default", path)], port=0, backend="file",
                          pool_pages=POOL_PAGES, chaos=chaos,
                          request_timeout=request_timeout,
                          circuit_threshold=circuit_threshold,
                          circuit_cooldown=circuit_cooldown)
    accept = threading.Thread(target=server.serve_forever,
                              name="chaos-matrix-accept")
    accept.start()
    host, port = server.server_address[:2]
    try:
        yield server, f"http://{host}:{port}"
    finally:
        server.drain(timeout=30.0)
        accept.join(30.0)


def http_post(base, path, payload, headers=None):
    all_headers = {"Content-Type": "application/json"}
    all_headers.update(headers or {})
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode("utf-8"),
        method="POST", headers=all_headers)
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read()), \
                response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def canonical_answer(body):
    """The semantic part of a /query response, canonically serialized."""
    return protocol.dumps({"approximate": body["approximate"],
                           "doc_ids": body["doc_ids"],
                           "match_count": body["match_count"],
                           "matches": body["matches"]})


def check_oracle(qid, status, body, reference):
    """One response against the robustness oracle; returns a violation
    description or None."""
    expected = reference[qid]
    if status == 200 and body.get("ok") and not body["approximate"]:
        if canonical_answer(body) != expected["canonical"]:
            return {"kind": "silent-wrong-answer", "qid": qid,
                    "got": json.loads(canonical_answer(body).decode())}
        return None
    if status == 200 and body.get("ok") and body["approximate"]:
        if not set(body["candidate_docs"]) >= set(expected["doc_ids"]):
            return {"kind": "unsound-superset", "qid": qid,
                    "candidates": body["candidate_docs"]}
        return None
    error = body.get("error") or {}
    code = error.get("code")
    if code not in ERROR_KINDS or status != ERROR_KINDS[code][0]:
        return {"kind": "untyped-failure", "qid": qid, "status": status,
                "body": body}
    return None


def dump_evidence(cell, violations, chaos_recipe):
    evidence = {"cell": cell, "violations": violations,
                "chaos": chaos_recipe}
    if ARTIFACT:
        with open(ARTIFACT, "w", encoding="utf-8") as handle:
            json.dump(evidence, handle, indent=2, sort_keys=True)
    return json.dumps(evidence, indent=2, sort_keys=True, default=str)


# ------------------------------------------------------------- the matrix

@pytest.mark.parametrize("mix", sorted(MIXES))
@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_matrix_oracle_and_convergence(index_path, reference, seed,
                                             mix):
    chaos = ChaosConfig(seed=seed, **MIXES[mix])
    with live_server(index_path, chaos=chaos) as (server, base_url):
        violations = []

        # Raw phase: concurrent unretried clients; every response must
        # satisfy the oracle -- correct bytes, sound superset, or typed.
        for threads in THREAD_COUNTS:
            barrier = threading.Barrier(threads)
            outcomes = [None] * threads

            def client(slot):
                try:
                    barrier.wait()
                    seen = []
                    for qid, xpath in QUERIES:
                        status, body, _ = http_post(base_url, "/query",
                                                    {"xpath": xpath})
                        seen.append((qid, status, body))
                    outcomes[slot] = ("ok", seen)
                except Exception as error:  # noqa: BLE001 - relayed below
                    outcomes[slot] = ("crash", repr(error))

            pool = [threading.Thread(target=client, args=(slot,),
                                     name=f"chaos-client-{slot}")
                    for slot in range(threads)]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()

            for slot, (verdict, seen) in enumerate(outcomes):
                if verdict != "ok":
                    violations.append({"kind": "client-crash",
                                       "slot": slot, "error": seen})
                    continue
                for qid, status, body in seen:
                    violation = check_oracle(qid, status, body, reference)
                    if violation is not None:
                        violation["threads"] = threads
                        violations.append(violation)

        # Convergence phase: the retrying client must end up with the
        # fault-free answers, byte-identical, for every query.
        retrier = PrixServeClient(base_url, retries=20, seed=seed,
                                  backoff_base=0.01, backoff_max=0.05)
        for qid, xpath in QUERIES:
            body = retrier.query(xpath)
            if canonical_answer(body) != reference[qid]["canonical"]:
                violations.append({"kind": "non-convergence", "qid": qid,
                                   "approximate": body["approximate"]})

        with server.registry.lease("default") as mount:
            recipe = mount.index._pool.chaos_describe()
        # The matrix is vacuous if the schedule never fired.
        assert sum(recipe["injected"].values()) > 0, recipe

    if violations:
        pytest.fail("chaos oracle violated:\n"
                    + dump_evidence({"seed": seed, "mix": mix,
                                     "threads": THREAD_COUNTS},
                                    violations, recipe))


# ------------------------------------------------- slow-loris and deadline

def test_slow_loris_request_gets_a_typed_408(index_path):
    with live_server(index_path, request_timeout=0.3) as (server, base_url):
        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=10) as sock:
            # A drip-feed attacker: part of a request line, then silence.
            sock.sendall(b"POST /query HT")
            sock.settimeout(10)
            raw = b""
            while True:
                try:
                    chunk = sock.recv(4096)
                except TimeoutError:
                    break
                if not chunk:
                    break
                raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 408"), raw
    assert b"Retry-After:" in head
    error = json.loads(body)["error"]
    assert error["code"] == "request-timeout"
    assert error["exit_code"] == 4


def test_deadline_header_tightens_the_budget_fork(index_path):
    with live_server(index_path) as (server, base_url):
        status, body, headers = http_post(
            base_url, "/query", {"xpath": QUERIES[0][1]},
            headers={DEADLINE_HEADER: "0.001"})
        assert status == 429, body
        error = body["error"]
        assert error["code"] == "budget-exhausted"
        assert error["detail"]["limit"] == "deadline"
        assert error["retry_after"] == 1
        assert headers.get("Retry-After") == "1"
        # A generous deadline changes nothing.
        status, body, _ = http_post(
            base_url, "/query", {"xpath": QUERIES[0][1]},
            headers={DEADLINE_HEADER: "60000"})
        assert status == 200 and body["approximate"] is False

        for bad in ("nope", "-5", "0"):
            status, body, _ = http_post(
                base_url, "/query", {"xpath": "//a"},
                headers={DEADLINE_HEADER: bad})
            assert status == 400
            assert body["error"]["code"] == "bad-request"
            assert DEADLINE_HEADER in body["error"]["message"]


# ------------------------------------------------------- circuit, end to end

def test_circuit_opens_probes_rescrubs_and_closes(index_path):
    """A total read blackout trips the breaker; after the storm heals,
    one half-open probe re-scrubs the mount and closes the circuit."""
    chaos = ChaosConfig(seed=7, read_error_period=1)  # every read fails
    with live_server(index_path, chaos=chaos, circuit_threshold=3,
                     circuit_cooldown=0.2) as (server, base_url):
        xpath = QUERIES[0][1]
        for _ in range(3):
            status, body, _ = http_post(base_url, "/query", {"xpath": xpath})
            assert status == 500
            assert body["error"]["code"] == "internal"

        # Open: shed up front, with the remaining cooldown as the hint.
        status, body, headers = http_post(base_url, "/query",
                                          {"xpath": xpath})
        assert status == 503
        assert body["error"]["code"] == "circuit-open"
        assert body["error"]["retry_after"] == 1
        assert headers.get("Retry-After") == "1"

        # The storm passes; the cooldown elapses; the next request is
        # the half-open probe, whose success re-scrubs and closes.
        with server.registry.lease("default") as mount:
            mount.index._pool.set_armed(False)
        time.sleep(0.25)
        status, body, _ = http_post(base_url, "/query", {"xpath": xpath})
        assert status == 200, body

        status, body, _ = http_post(base_url, "/query", {"xpath": xpath})
        assert status == 200

        with urllib.request.urlopen(base_url + "/metrics",
                                    timeout=60) as response:
            snap = json.loads(response.read())
    circuit = snap["circuit"]["default"]
    assert circuit["state"] == "closed"
    assert circuit["opened_total"] == 1
    assert circuit["consecutive_failures"] == 0
    events = snap["events"]
    assert events["circuit-open"] == 1
    assert events["circuit-half-open"] == 1
    assert events["circuit-close"] == 1
    assert snap["leaked_generations"] == []
