"""TwigStack / PathStack tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_random_tree, make_random_twig
from repro.baselines.naive import naive_matches
from repro.baselines.region import StreamSet
from repro.baselines.twigstack import (build_query_tree, path_stack,
                                       twig_stack)
from repro.query.xpath import parse_xpath
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.xmlkit.parser import parse_document
from repro.xmlkit.tree import Document


def stream_set(docs):
    pool = BufferPool(Pager.in_memory())
    return StreamSet.build(docs, pool), pool


def xpath_truth(docs, pattern):
    return {(d.doc_id, emb) for d in docs
            for emb in naive_matches(d, pattern, semantics="xpath")}


class TestQueryTree:
    def test_structure(self):
        root = build_query_tree(parse_xpath("//a[./b]//c"))
        assert root.tag == "a"
        assert [c.tag for c in root.children] == ["b", "c"]
        assert root.is_root and root.children[0].is_leaf

    def test_value_nodes_get_prefixed_tags(self):
        root = build_query_tree(parse_xpath('//a[./b="x"]'))
        value_node = root.children[0].children[0]
        assert value_node.tag == "\x1fx"

    def test_star_maps_to_union_stream(self):
        root = build_query_tree(parse_xpath("//a/*"))
        assert root.children[0].tag == "*"

    def test_star_query_matches_elements_only(self):
        docs = [parse_document("<a><b/>text</a>", 1)]
        streams, _ = stream_set(docs)
        matches, _ = twig_stack(parse_xpath("//a/*"), streams)
        # One occurrence: the star is an existence test over elements.
        assert len(matches) == 1

    def test_star_in_middle(self):
        docs = [parse_document("<a><x><b/></x><b/></a>", 1)]
        streams, _ = stream_set(docs)
        matches, _ = twig_stack(parse_xpath("//a/*/b"), streams)
        assert len(matches) == 1


class TestTwigStack:
    def test_simple_path(self):
        docs = [parse_document("<a><b><c/></b></a>", 1)]
        streams, _ = stream_set(docs)
        matches, _ = twig_stack(parse_xpath("//a/b/c"), streams)
        assert len(matches) == 1

    def test_descendant_vs_child(self):
        docs = [parse_document("<a><x><b/></x><b/></a>", 1)]
        streams, _ = stream_set(docs)
        child_matches, _ = twig_stack(parse_xpath("//a/b"), streams)
        desc_matches, _ = twig_stack(parse_xpath("//a//b"), streams)
        assert len(child_matches) == 1
        assert len(desc_matches) == 2

    def test_branching_twig(self):
        docs = [parse_document("<a><b/><c/></a>", 1),
                parse_document("<a><b/></a>", 2)]
        streams, _ = stream_set(docs)
        matches, _ = twig_stack(parse_xpath("//a[./b]/c"), streams)
        assert {doc for doc, _ in matches} == {1}

    def test_suboptimal_path_solutions_on_parent_child(self):
        """Section 2's sub-optimality: partial matches of one twig path
        that cannot combine with the other path are produced and then
        discarded by the merge post-processing step."""
        docs = [parse_document("<root><p><q/></p><p><r/></p></root>", 1)]
        streams, _ = stream_set(docs)
        matches, stats = twig_stack(parse_xpath("//p[./q]/r"), streams)
        assert matches == set()
        assert stats.path_solutions > 0   # wasted partial work
        assert stats.merged_solutions == 0

    def test_grandchild_not_matched_by_child_edge(self):
        docs = [parse_document("<p><x><q/></x><y><r/></y></p>", 1)]
        streams, _ = stream_set(docs)
        matches, _ = twig_stack(parse_xpath("//p[./q]/r"), streams)
        assert matches == set()
        desc, _ = twig_stack(parse_xpath("//p[.//q]//r"), streams)
        assert len(desc) == 1

    def test_multi_document(self):
        docs = [parse_document(f"<a><b><c/></b></a>", i + 1)
                for i in range(5)]
        streams, _ = stream_set(docs)
        matches, _ = twig_stack(parse_xpath("//a/b/c"), streams)
        assert {doc for doc, _ in matches} == {1, 2, 3, 4, 5}

    def test_exhausted_branch_does_not_kill_others(self):
        """Regression: one branch's stream ending early must not abort
        path solutions of the remaining branches."""
        text = ("<r><needle/><x><a/></x><x><a/></x>"
                "<late><b/></late></r>")
        docs = [parse_document(text, 1)]
        streams, _ = stream_set(docs)
        matches, _ = twig_stack(parse_xpath("//r[./needle]//b"), streams)
        assert len(matches) == 1


class TestPathStack:
    def test_path_query(self):
        docs = [parse_document("<a><b><c/></b><b/></a>", 1)]
        streams, _ = stream_set(docs)
        matches, _ = path_stack(parse_xpath("//a/b/c"), streams)
        assert len(matches) == 1

    def test_branching_rejected(self):
        docs = [parse_document("<a/>", 1)]
        streams, _ = stream_set(docs)
        with pytest.raises(ValueError):
            path_stack(parse_xpath("//a[./b]/c"), streams)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_twigstack_matches_xpath_oracle(seed):
    rng = random.Random(seed)
    docs = [Document(make_random_tree(rng, max_nodes=15), doc_id=i + 1)
            for i in range(3)]
    pattern = make_random_twig(rng, star_p=0.0, absolute_p=0.0)
    streams, _ = stream_set(docs)
    got, _ = twig_stack(pattern, streams)
    assert got == xpath_truth(docs, pattern)
