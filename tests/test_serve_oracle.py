"""Live-server oracle: concurrent HTTP clients vs. direct index calls.

The serving tier must add *nothing* to the query semantics: N client
threads hammering a live ``prix serve`` process get byte-identical
answers to direct single-threaded :class:`PrixIndex` calls, and the
server's storage counters obey the same exact conservation law the
threaded stress harness pins (``tests/test_threaded_stress.py``):

- every response's matches equal the reference, byte-for-byte (compared
  through the canonical protocol serialization);
- the server-side ``physical_reads`` delta over the client phase equals
  the reference pass exactly -- single-flight loading means T threads
  missing on the same page read it once;
- ``logical_reads`` equals ``T x`` the reference (all the work
  happened, none was lost);
- zero evictions (the pool is sized above the working set).

Also covered live: budget admission (filter-phase over-quota -> typed
429; refinement-phase -> sound ``approximate=True`` superset), the
cached-scrub ``/healthz`` regression against ``ScrubReport.to_json``,
``/metrics`` accounting, and graceful drain.

Runs unchanged under ``PRIX_SANITIZE=1`` (the CI serve-smoke sanitized
shard does exactly that).  Environment knobs:

- ``PRIX_SERVE_THREADS``: comma-separated client thread counts
  (default 2,8).
"""

import json
import os
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.bench.workloads import queries_for
from repro.datasets.dblp import dblp
from repro.prix.budget import QueryBudget
from repro.prix.index import IndexOptions, PrixIndex
from repro.serve import protocol
from repro.serve.admission import ServerLimits
from repro.serve.server import build_server
from repro.storage import scrub_path

THREAD_COUNTS = [int(t) for t in
                 os.environ.get("PRIX_SERVE_THREADS", "2,8").split(",")]
QUERIES = [(spec.qid, spec.xpath) for spec in queries_for("dblp")]

#: Far above the working set of an 80-record corpus (zero evictions).
POOL_PAGES = 512


@pytest.fixture(scope="module")
def index_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("serve-oracle") / "oracle.prix")
    index = PrixIndex.build(dblp(n_records=80, seed=11),
                            IndexOptions(path=path,
                                         pool_pages=POOL_PAGES))
    index.save()
    index.close()
    return path


@contextmanager
def live_server(path, backend="mmap", limits=None):
    server = build_server([("default", path)], port=0, backend=backend,
                          pool_pages=POOL_PAGES, limits=limits)
    accept = threading.Thread(target=server.serve_forever,
                              name="serve-oracle-accept")
    accept.start()
    host, port = server.server_address[:2]
    try:
        yield server, f"http://{host}:{port}"
    finally:
        server.drain(timeout=30.0)
        accept.join(30.0)


def http_post(base, path, payload):
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode("utf-8"),
        method="POST", headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def canonical_answer(body):
    """The semantic part of a /query response, canonically serialized."""
    return protocol.dumps({"approximate": body["approximate"],
                           "doc_ids": body["doc_ids"],
                           "match_count": body["match_count"],
                           "matches": body["matches"]})


def reference_answers(path, backend):
    """Single-threaded direct-index ground truth, as wire payloads."""
    answers = {}
    with PrixIndex.open(path, pool_pages=POOL_PAGES,
                        backend=backend) as index:
        base = index.io_stats.snapshot()
        for qid, xpath in QUERIES:
            request = protocol.QueryRequest(xpath=xpath)
            matches, stats = index.query_with_stats(xpath)
            answers[qid] = canonical_answer(
                protocol.result_payload(request, matches, stats, 1))
        totals = index.io_stats.delta(base)
    return answers, {"physical_reads": totals.physical_reads,
                     "logical_reads": totals.logical_reads,
                     "evictions": totals.evictions}


def storage_counters(base_url):
    status, body = http_get(base_url, "/metrics")
    assert status == 200
    return body["storage"]["default"]


@pytest.mark.parametrize("threads", THREAD_COUNTS)
@pytest.mark.parametrize("backend", ["mmap", "file"])
def test_concurrent_clients_match_direct_index_exactly(index_path, backend,
                                                       threads):
    with live_server(index_path, backend=backend) as (server, base_url):
        reference, ref_io = reference_answers(index_path, backend)
        assert ref_io["physical_reads"] > 0  # the oracle is non-trivial

        before = storage_counters(base_url)
        barrier = threading.Barrier(threads)
        outcomes = [None] * threads

        def client(slot):
            try:
                barrier.wait()
                answers = {}
                for qid, xpath in QUERIES:
                    status, body = http_post(base_url, "/query",
                                             {"xpath": xpath})
                    assert status == 200, body
                    answers[qid] = canonical_answer(body)
                outcomes[slot] = ("ok", answers)
            except Exception as error:  # noqa: BLE001 - relayed below
                outcomes[slot] = ("err", repr(error))

        pool = [threading.Thread(target=client, args=(slot,),
                                 name=f"serve-client-{slot}")
                for slot in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        after = storage_counters(base_url)

    assert [o for o in outcomes if o[0] == "err"] == []
    divergent = {slot: outcome[1] for slot, outcome in enumerate(outcomes)
                 if outcome[1] != reference}
    assert divergent == {}, "served results diverge from direct index"

    served_io = {key: after[key] - before[key]
                 for key in ("physical_reads", "logical_reads",
                             "evictions")}
    assert served_io == {
        "physical_reads": ref_io["physical_reads"],
        "logical_reads": threads * ref_io["logical_reads"],
        "evictions": 0,
    }


def test_filter_phase_over_quota_is_a_typed_429(index_path):
    limits = ServerLimits(budget=QueryBudget(max_range_queries=1))
    with live_server(index_path, limits=limits) as (server, base_url):
        status, body = http_post(base_url, "/query",
                                 {"xpath": "//article/author"})
    assert status == 429
    error = body["error"]
    assert error["code"] == "budget-exhausted"
    assert error["exit_code"] == 1
    assert error["error_type"] == "BudgetExceededError"
    assert error["detail"]["phase"] == "filter"
    assert error["detail"]["limit"] == "range_queries"


def test_refinement_over_quota_degrades_to_sound_superset(index_path):
    limits = ServerLimits(budget=QueryBudget(max_candidates=1))
    with live_server(index_path, limits=limits) as (server, base_url):
        status, body = http_post(base_url, "/query",
                                 {"xpath": "//article/author"})
        exact_docs = None
        with PrixIndex.open(index_path, backend="mmap") as index:
            exact_docs = index.query("//article/author").doc_ids
    assert status == 200
    assert body["approximate"] is True
    assert body["degradation"]["phase"] == "refinement"
    assert body["degradation"]["limit"] == "candidates"
    # Theorems 1-2: the degraded answer is a superset of the exact one.
    assert set(body["candidate_docs"]) >= set(exact_docs)


def test_over_capacity_and_draining_rejections_are_typed(index_path):
    limits = ServerLimits(max_inflight=0)
    with live_server(index_path, limits=limits) as (server, base_url):
        status, body = http_post(base_url, "/query", {"xpath": "//a"})
        assert (status, body["error"]["code"]) == (503, "over-capacity")
        server.admission.begin_drain()
        status, body = http_post(base_url, "/query", {"xpath": "//a"})
        assert (status, body["error"]["code"]) == (503, "draining")


def test_healthz_serves_the_exact_scrub_to_json(index_path):
    with live_server(index_path) as (server, base_url):
        status, body = http_get(base_url, "/healthz")
        # Recomputed now, the report must equal the mount-time cache:
        # both sides are ScrubReport.to_json of the same bytes.
        expected = json.loads(scrub_path(index_path).to_json())
    assert status == 200
    assert body["healthy"] is True
    entry = body["indexes"]["default"]
    assert entry["scrub"] == expected
    assert entry["generation"] == 1


def test_metrics_account_requests_errors_and_degradations(index_path):
    limits = ServerLimits(budget=QueryBudget(max_candidates=1))
    with live_server(index_path, limits=limits) as (server, base_url):
        http_post(base_url, "/query", {"xpath": "//article/author"})  # degrades
        http_post(base_url, "/query", {"bad": "request"})
        http_get(base_url, "/nowhere")
        status, body = http_get(base_url, "/metrics")
    assert status == 200
    query = body["endpoints"]["/query"]
    assert query["requests"] == 2
    assert query["degraded"] == 1
    assert query["errors"] == {"bad-request": 1}
    assert body["endpoints"]["/nowhere"]["errors"] == {"not-found": 1}
    assert body["admission"]["inflight"] == 0


def test_reload_and_drain_leave_no_loose_ends(index_path):
    with live_server(index_path) as (server, base_url):
        status, body = http_post(base_url, "/reload", {})
        assert (status, body["generation"]) == (200, 2)
        status, body = http_post(base_url, "/query",
                                 {"xpath": "//article/author"})
        assert status == 200
        assert body["index"]["generation"] == 2
    # The context manager drained: every mount is closed and the socket
    # is gone.
    assert server.registry.describe() == {}
    with pytest.raises(urllib.error.URLError):
        http_get(base_url, "/healthz")
