"""Incremental insertion tests (dynamic labeling, Section 5.2.1)."""

import random

import pytest

from helpers import make_random_tree
from repro.baselines.naive import naive_matches
from repro.prix.incremental import RebuildRequiredError
from repro.prix.index import IndexOptions, PrixIndex
from repro.query.xpath import parse_xpath
from repro.xmlkit.parser import parse_document
from repro.xmlkit.tree import Document

DYNAMIC = IndexOptions(labeler="dynamic", alpha=4)


def docs_from(texts, start=1):
    return [parse_document(text, doc_id=start + i)
            for i, text in enumerate(texts)]


def answers(index, xpath):
    return {(m.doc_id, m.canonical) for m in index.query(xpath)}


class TestInsertBasics:
    def test_inserted_document_found(self):
        index = PrixIndex.build(
            docs_from(["<a><b><c/></b></a>"]), DYNAMIC)
        index.insert_document(parse_document("<a><b><c/><c/></b></a>", 2))
        found = answers(index, "//a/b/c")
        assert {doc for doc, _ in found} == {1, 2}

    def test_insert_creates_new_trie_paths(self):
        index = PrixIndex.build(docs_from(["<a><b/></a>"]), DYNAMIC)
        before = index.trie_stats("rp").node_count
        index.insert_document(parse_document("<x><y><z/></y></x>", 2))
        assert index.trie_stats("rp").node_count > before
        assert len(index.query("//x/y/z")) == 1

    def test_insert_shared_path_adds_no_nodes(self):
        index = PrixIndex.build(docs_from(["<a><b/></a>"]), DYNAMIC)
        before = index.trie_stats("rp").node_count
        index.insert_document(parse_document("<a><b/></a>", 2))
        assert index.trie_stats("rp").node_count == before
        assert len(index.query("//a/b")) == 2

    def test_duplicate_id_rejected(self):
        index = PrixIndex.build(docs_from(["<a><b/></a>"]), DYNAMIC)
        with pytest.raises(ValueError):
            index.insert_document(parse_document("<c><d/></c>", 1))

    def test_doc_count_grows(self):
        index = PrixIndex.build(docs_from(["<a><b/></a>"]), DYNAMIC)
        index.insert_document(parse_document("<a><c/></a>", 2))
        assert index.doc_count == 2

    def test_value_queries_after_insert(self):
        index = PrixIndex.build(
            docs_from(["<a><b>x</b></a>"]), DYNAMIC)
        index.insert_document(parse_document("<a><b>y</b></a>", 2))
        assert {doc for doc, _ in answers(index, '//a[./b="y"]')} == {2}
        assert {doc for doc, _ in answers(index, '//a[./b="x"]')} == {1}


class TestIncrementalEqualsBatch:
    def test_differential_against_rebuild(self):
        rng = random.Random(7)
        all_docs = [Document(make_random_tree(rng, max_nodes=12),
                             doc_id=i + 1) for i in range(20)]
        incremental = PrixIndex.build(all_docs[:10], DYNAMIC)
        for document in all_docs[10:]:
            incremental.insert_document(document)
        batch = PrixIndex.build(all_docs, DYNAMIC)

        rng2 = random.Random(8)
        from helpers import make_random_twig
        for _ in range(15):
            pattern = make_random_twig(rng2)
            for variant in ("rp", "ep"):
                got = {(m.doc_id, m.canonical) for m in
                       incremental.query(pattern, variant=variant)}
                want = {(m.doc_id, m.canonical) for m in
                        batch.query(pattern, variant=variant)}
                assert got == want
                oracle = {(d.doc_id, emb) for d in all_docs
                          for emb in naive_matches(d, pattern)}
                assert got == oracle

    def test_maxgap_still_lossless_after_inserts(self):
        rng = random.Random(9)
        docs = [Document(make_random_tree(rng, max_nodes=10),
                         doc_id=i + 1) for i in range(6)]
        index = PrixIndex.build(docs[:3], DYNAMIC)
        for document in docs[3:]:
            index.insert_document(document)
        pattern = parse_xpath("//a//b")
        with_pruning = {(m.doc_id, m.canonical)
                        for m in index.query(pattern, use_maxgap=True)}
        without = {(m.doc_id, m.canonical)
                   for m in index.query(pattern, use_maxgap=False)}
        assert with_pruning == without


class TestUnderflowAndRebuild:
    def test_bulk_labeled_index_rejects_new_paths(self):
        index = PrixIndex.build(docs_from(["<a><b/></a>"]))  # bulk labels
        with pytest.raises(RebuildRequiredError):
            index.insert_document(parse_document("<x><y/></x>", 2))

    def test_rebuild_recovers_all_documents(self):
        index = PrixIndex.build(docs_from(["<a><b/></a>"]))
        with pytest.raises(RebuildRequiredError):
            index.insert_document(parse_document("<x><y/></x>", 2))
        fresh = index.rebuilt()
        assert fresh.doc_count == 2
        assert len(fresh.query("//x/y")) == 1
        assert len(fresh.query("//a/b")) == 1

    def test_export_documents_roundtrip(self):
        texts = ["<a k=\"1\"><b>hi</b><c/></a>", "<d><e><f/></e></d>"]
        index = PrixIndex.build(docs_from(texts), DYNAMIC)
        from repro.xmlkit.tree import same_tree
        originals = docs_from(texts)
        exported = index.export_documents()
        for original, restored in zip(originals, exported):
            assert same_tree(original.root, restored.root)

    def test_rebuilt_index_queries_match(self):
        rng = random.Random(10)
        docs = [Document(make_random_tree(rng, max_nodes=10),
                         doc_id=i + 1) for i in range(8)]
        index = PrixIndex.build(docs, DYNAMIC)
        fresh = index.rebuilt()
        for xpath in ("//a/b", "//a//c", "//b[./a]"):
            assert answers(index, xpath) == answers(fresh, xpath)


class TestPersistenceOfInserts:
    def test_inserts_survive_save_and_open(self, tmp_path):
        path = str(tmp_path / "grow.idx")
        options = IndexOptions(labeler="dynamic", alpha=4, path=path)
        index = PrixIndex.build(docs_from(["<a><b/></a>"]), options)
        index.insert_document(parse_document("<a><b/><b/></a>", 2))
        index.save()
        index.close()
        reopened = PrixIndex.open(path)
        assert reopened.doc_count == 2
        assert len(reopened.query("//a/b")) == 3
        reopened.insert_document(parse_document("<a><b/></a>", 3))
        assert len(reopened.query("//a/b")) == 4
        reopened.close()
