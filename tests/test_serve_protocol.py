"""Golden tests for the serving protocol: every typed error, byte-exact.

The protocol's promise is that a script can branch on the same failure
vocabulary over HTTP that it branches on via exit codes from the CLI --
so these tests pin the exact (HTTP status, exit_code) pair of every
error kind, the canonical serialization bytes, and the exception ->
typed-error mapping for every library failure the serving path can see.
"""

import json

import pytest

from repro.exitcodes import (EXIT_CORRUPTION, EXIT_ERROR, EXIT_TIMEOUT,
                             EXIT_USAGE)
from repro.prix.budget import (BudgetExceededError, DegradationReason,
                               PHASE_FILTER)
from repro.serve import protocol
from repro.serve.protocol import (ERROR_KINDS, ProtocolError, QueryRequest,
                                  error_for_exception, parse_query_request,
                                  result_payload)
from repro.storage.errors import (PageCorruptionError, ReadOnlyBackendError,
                                  TransientStorageError, WalCorruptionError)


# ---------------------------------------------------------------- vocabulary

#: The full contract, spelled out: code -> (HTTP status, CLI exit code).
EXPECTED_KINDS = {
    "bad-request": (400, EXIT_USAGE),
    "not-found": (404, EXIT_USAGE),
    "method-not-allowed": (405, EXIT_USAGE),
    "read-only": (403, EXIT_ERROR),
    "request-timeout": (408, EXIT_TIMEOUT),
    "budget-exhausted": (429, EXIT_ERROR),
    "over-capacity": (503, EXIT_ERROR),
    "draining": (503, EXIT_ERROR),
    "circuit-open": (503, EXIT_ERROR),
    "corruption": (500, EXIT_CORRUPTION),
    "internal": (500, EXIT_ERROR),
}


def test_error_vocabulary_is_exactly_the_contract():
    assert ERROR_KINDS == EXPECTED_KINDS


@pytest.mark.parametrize("code", sorted(EXPECTED_KINDS))
def test_every_error_kind_serializes_with_status_and_exit_code(code):
    status, exit_code = EXPECTED_KINDS[code]
    error = ProtocolError(code, "boom")
    assert error.http_status == status
    assert error.exit_code == exit_code
    body = error.body()
    assert body["ok"] is False
    assert body["error"]["code"] == code
    assert body["error"]["exit_code"] == exit_code
    assert body["error"]["message"] == "boom"
    assert "detail" not in body["error"]


def test_unknown_error_code_is_rejected():
    with pytest.raises(ValueError):
        ProtocolError("no-such-kind", "x")


def test_dumps_is_canonical_bytes():
    # Golden: sorted keys, compact separators, utf-8 bytes.
    assert protocol.dumps({"b": 1, "a": [True, None]}) == \
        b'{"a":[true,null],"b":1}'


def test_error_body_golden_bytes():
    error = ProtocolError("draining", "server is draining")
    assert protocol.dumps(error.body()) == (
        b'{"error":{"code":"draining","error_type":"ProtocolError",'
        b'"exit_code":1,"message":"server is draining"},"ok":false}')


def test_retryable_error_body_golden_bytes():
    # Golden: retry_after rides in the body so a client that cannot see
    # HTTP headers (or a log reader) still gets the backoff floor.
    error = ProtocolError("circuit-open", "circuit is open", retry_after=2)
    assert protocol.dumps(error.body()) == (
        b'{"error":{"code":"circuit-open","error_type":"ProtocolError",'
        b'"exit_code":1,"message":"circuit is open","retry_after":2},'
        b'"ok":false}')


def test_retry_after_defaults_to_absent():
    assert "retry_after" not in ProtocolError("draining", "x").body()["error"]
    assert ProtocolError("draining", "x").retry_after is None


# ------------------------------------------------------- exception mapping

def test_budget_exceeded_maps_to_429_with_degradation_detail():
    reason = DegradationReason(phase=PHASE_FILTER, limit="range_queries",
                               spent=11, budget=10)
    typed = error_for_exception(BudgetExceededError(reason))
    assert typed.code == "budget-exhausted"
    assert typed.http_status == 429
    assert typed.exit_code == EXIT_ERROR
    assert typed.error_type == "BudgetExceededError"
    assert typed.detail == {"phase": "filter", "limit": "range_queries",
                            "spent": 11, "budget": 10}
    # Budget exhaustion is retryable: the rejection carries the default
    # Retry-After hint (satellite of the chaos/resilience contract).
    assert typed.retry_after == protocol.DEFAULT_RETRY_AFTER_SECONDS


def test_timeout_maps_to_408_with_retry_after():
    # TimeoutError subclasses OSError; the dedicated arm must win over
    # the generic internal mapping so a stalled read is retryable.
    typed = error_for_exception(TimeoutError("timed out"))
    assert typed.code == "request-timeout"
    assert typed.http_status == 408
    assert typed.exit_code == EXIT_TIMEOUT
    assert typed.retry_after == protocol.DEFAULT_RETRY_AFTER_SECONDS
    # An empty TimeoutError (the usual socket case) still gets a message.
    assert error_for_exception(TimeoutError()).message == "timed out"


@pytest.mark.parametrize("error,code,exit_code", [
    (PageCorruptionError("page 3 checksum"), "corruption", EXIT_CORRUPTION),
    (WalCorruptionError("torn record"), "corruption", EXIT_CORRUPTION),
    (ReadOnlyBackendError("mmap is read-only"), "read-only", EXIT_ERROR),
    (FileNotFoundError("no such index"), "not-found", EXIT_USAGE),
    (KeyError("variant 'ep' was not built"), "not-found", EXIT_USAGE),
    (ValueError("bad xpath"), "internal", EXIT_ERROR),
    (OSError("socket"), "internal", EXIT_ERROR),
    (TimeoutError("read timed out"), "request-timeout", EXIT_TIMEOUT),
    # A chaos-injected transient read fault is an internal server error
    # on the wire -- retryable by status, but never silently absorbed.
    (TransientStorageError("injected read-error"), "internal", EXIT_ERROR),
    (RuntimeError("surprise"), "internal", EXIT_ERROR),
])
def test_library_exceptions_map_to_their_cli_exit_codes(error, code,
                                                        exit_code):
    # The same ladder repro.cli.main applies, on the wire.
    typed = error_for_exception(error)
    assert typed.code == code
    assert typed.exit_code == exit_code
    assert typed.error_type == type(error).__name__


def test_protocol_error_passes_through_unchanged():
    original = ProtocolError("over-capacity", "full")
    assert error_for_exception(original) is original


# ------------------------------------------------------------ request parse

def test_parse_minimal_request_fills_defaults():
    request = parse_query_request(b'{"xpath": "//a/b"}')
    assert request == QueryRequest(xpath="//a/b")
    assert request.index == "default"
    assert request.ordered is False
    assert request.use_maxgap is True
    assert request.variant is None
    assert request.limit is None


def test_parse_full_request():
    request = parse_query_request(json.dumps({
        "xpath": "//a", "index": "dblp", "ordered": True,
        "variant": "ep", "use_maxgap": False, "limit": 3,
    }).encode())
    assert request == QueryRequest(xpath="//a", index="dblp", ordered=True,
                                   variant="ep", use_maxgap=False, limit=3)


@pytest.mark.parametrize("raw,fragment", [
    (b"not json", "not valid JSON"),
    (b"[1,2]", "must be a JSON object"),
    (b"{}", "missing 'xpath'"),
    (b'{"xpath": 7}', "'xpath' must be str"),
    (b'{"xpath": "//a", "bogus": 1}', "unknown request field"),
    (b'{"xpath": "//a", "ordered": "yes"}', "'ordered' must be bool"),
    (b'{"xpath": "//a", "limit": true}', "'limit' must be int"),
    (b'{"xpath": "//a", "limit": -1}', "'limit' must be >= 0"),
    (b'{"xpath": "//a", "variant": "zz"}', "must be 'rp' or 'ep'"),
])
def test_malformed_requests_are_typed_bad_requests(raw, fragment):
    with pytest.raises(ProtocolError) as caught:
        parse_query_request(raw)
    assert caught.value.code == "bad-request"
    assert caught.value.exit_code == EXIT_USAGE
    assert fragment in caught.value.message


# ------------------------------------------------------------ result bodies

class _FakeStats:
    variant = "rp"
    strategy = "trie"
    arrangements = 2
    candidates_refined = 5
    candidates_accepted = 3
    physical_reads = 7
    elapsed_seconds = 0.004


class _FakeMatch:
    def __init__(self, doc_id, images):
        self.doc_id = doc_id
        self.images = images


class _FakeResult(list):
    def __init__(self, matches, approximate=False, degradation_reason=None):
        super().__init__(matches)
        self.approximate = approximate
        self.degradation_reason = degradation_reason

    @property
    def doc_ids(self):
        return sorted({match.doc_id for match in self})


def test_exact_result_payload_lists_matches():
    matches = _FakeResult([_FakeMatch(1, ((0, 5), (1, 2))),
                           _FakeMatch(4, ((0, 9), (1, 7)))])
    body = result_payload(QueryRequest(xpath="//a"), matches, _FakeStats(),
                          generation=3)
    assert body["ok"] is True
    assert body["approximate"] is False
    assert body["index"] == {"name": "default", "generation": 3}
    assert body["match_count"] == 2
    assert body["doc_ids"] == [1, 4]
    assert body["truncated"] == 0
    assert body["matches"] == [{"doc": 1, "images": [[0, 5], [1, 2]]},
                               {"doc": 4, "images": [[0, 9], [1, 7]]}]
    assert body["stats"]["physical_reads"] == 7
    assert body["stats"]["elapsed_ms"] == 4.0


def test_result_payload_honours_limit_and_counts_overflow():
    matches = _FakeResult([_FakeMatch(i, ()) for i in range(1, 6)])
    body = result_payload(QueryRequest(xpath="//a", limit=2), matches,
                          _FakeStats(), generation=1)
    assert len(body["matches"]) == 2
    assert body["truncated"] == 3
    assert body["match_count"] == 5  # total, not the truncated view


def test_degraded_result_payload_carries_superset_and_reason():
    reason = DegradationReason(phase="refinement", limit="candidates",
                               spent=3, budget=2)
    matches = _FakeResult([_FakeMatch(2, ()), _FakeMatch(6, ())],
                          approximate=True, degradation_reason=reason)
    body = result_payload(QueryRequest(xpath="//a"), matches, _FakeStats(),
                          generation=1)
    assert body["approximate"] is True
    assert body["candidate_docs"] == [2, 6]
    assert body["candidate_count"] == 2
    assert body["degradation"] == reason.as_dict()
    assert "matches" not in body  # no verified embeddings to show
