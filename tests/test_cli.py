"""CLI tests (build / query / stats round trips)."""

import pytest

from repro.cli import main


@pytest.fixture()
def xml_files(tmp_path):
    paths = []
    texts = [
        "<lib><book><author>Knuth</author><title>TAOCP</title></book></lib>",
        "<lib><book><author>Aho</author><title>Dragon</title></book>"
        "<journal><title>TODS</title></journal></lib>",
    ]
    for index, text in enumerate(texts):
        path = tmp_path / f"doc{index}.xml"
        path.write_text(text, encoding="utf-8")
        paths.append(str(path))
    return paths


@pytest.fixture()
def built_index(tmp_path, xml_files, capsys):
    index_path = str(tmp_path / "cli.idx")
    assert main(["build", index_path] + xml_files) == 0
    capsys.readouterr()
    return index_path


class TestBuild:
    def test_build_from_files(self, tmp_path, xml_files, capsys):
        index_path = str(tmp_path / "out.idx")
        assert main(["build", index_path] + xml_files) == 0
        out = capsys.readouterr().out
        assert "parsed 2 document(s)" in out
        assert "index written" in out

    def test_build_from_corpus(self, tmp_path, capsys):
        index_path = str(tmp_path / "corpus.idx")
        assert main(["build", index_path, "--corpus", "dblp",
                     "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "120 documents" in out

    def test_build_without_input_fails(self, tmp_path, capsys):
        assert main(["build", str(tmp_path / "x.idx")]) == 2

    def test_build_bad_xml_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<a><b></a>", encoding="utf-8")
        assert main(["build", str(tmp_path / "x.idx"), str(bad)]) == 1


class TestQuery:
    def test_query_finds_matches(self, built_index, capsys):
        assert main(["query", built_index,
                     '//book[./author="Knuth"]/title']) == 0
        out = capsys.readouterr().out
        assert "1 match(es) in 1 document(s)" in out

    def test_query_explain(self, built_index, capsys):
        assert main(["query", built_index, "//book/title",
                     "--explain", "--cold"]) == 0
        out = capsys.readouterr().out
        assert "variant=" in out
        assert "pages read" in out

    def test_query_variant_and_flags(self, built_index, capsys):
        assert main(["query", built_index, "//book/title",
                     "--variant", "rp", "--no-maxgap", "--ordered"]) == 0

    def test_query_limit(self, built_index, capsys):
        assert main(["query", built_index, "//lib//title",
                     "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "more)" in out

    def test_query_bad_xpath(self, built_index, capsys):
        assert main(["query", built_index, "//a[["]) == 1

    def test_query_missing_index(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "no.idx"), "//a/b"]) == 2
        err = capsys.readouterr().err
        assert "missing file" in err and "Traceback" not in err


class TestStats:
    def test_stats_output(self, built_index, capsys):
        assert main(["stats", built_index]) == 0
        out = capsys.readouterr().out
        assert "documents: 2" in out
        assert "RPIndex" in out and "EPIndex" in out
        assert "trie nodes" in out


class TestExplainAndSplit:
    def test_explain_command(self, built_index, capsys):
        assert main(["explain", built_index, "//book/title"]) == 0
        out = capsys.readouterr().out
        assert "variant:" in out and "strategy:" in out

    def test_build_with_split(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.xml"
        corpus.write_text("<dblp><article><t>A</t></article>"
                          "<article><t>B</t></article></dblp>",
                          encoding="utf-8")
        index_path = str(tmp_path / "split.idx")
        assert main(["build", index_path, str(corpus), "--split"]) == 0
        out = capsys.readouterr().out
        assert "parsed 2 document(s)" in out
        assert main(["stats", index_path]) == 0
        assert "documents: 2" in capsys.readouterr().out


class TestInsertDelete:
    def test_insert_into_dynamic_index(self, tmp_path, capsys):
        index_path = str(tmp_path / "dyn.idx")
        doc = tmp_path / "doc.xml"
        doc.write_text("<a><b/></a>", encoding="utf-8")
        assert main(["build", index_path, str(doc),
                     "--labeler", "dynamic"]) == 0
        new_doc = tmp_path / "new.xml"
        new_doc.write_text("<a><b/><c/></a>", encoding="utf-8")
        assert main(["insert", index_path, str(new_doc)]) == 0
        out = capsys.readouterr().out
        assert "index now holds 2 documents" in out
        assert main(["query", index_path, "//a/c"]) == 0
        assert "1 match(es)" in capsys.readouterr().out

    def test_insert_into_bulk_index_advises_rebuild(self, tmp_path,
                                                    capsys):
        index_path = str(tmp_path / "bulk.idx")
        doc = tmp_path / "doc.xml"
        doc.write_text("<a><b/></a>", encoding="utf-8")
        assert main(["build", index_path, str(doc)]) == 0
        new_doc = tmp_path / "new.xml"
        new_doc.write_text("<x><y/></x>", encoding="utf-8")
        assert main(["insert", index_path, str(new_doc)]) == 1
        assert "--labeler dynamic" in capsys.readouterr().err

    def test_delete(self, tmp_path, capsys):
        index_path = str(tmp_path / "del.idx")
        docs = []
        for i in range(2):
            path = tmp_path / f"d{i}.xml"
            path.write_text(f"<a><b id=\"{i}\"/></a>", encoding="utf-8")
            docs.append(str(path))
        assert main(["build", index_path] + docs) == 0
        assert main(["delete", index_path, "1"]) == 0
        out = capsys.readouterr().out
        assert "index now holds 1 documents" in out
        assert main(["delete", index_path, "99"]) == 1


@pytest.fixture()
def guarded_index(tmp_path, xml_files, capsys):
    index_path = str(tmp_path / "guard.idx")
    assert main(["build", index_path] + xml_files
                + ["--durable", "--guard", "--page-size", "256"]) == 0
    capsys.readouterr()
    return index_path


class TestGuardAndScrub:
    def test_build_guard_writes_sidecar(self, tmp_path, xml_files,
                                        capsys):
        index_path = str(tmp_path / "g.idx")
        assert main(["build", index_path] + xml_files
                    + ["--guard"]) == 0
        out = capsys.readouterr().out
        assert f"checksum sidecar at {index_path}.sum" in out
        import os
        assert os.path.exists(index_path + ".sum")

    def test_scrub_healthy_index(self, guarded_index, capsys):
        assert main(["scrub", guarded_index]) == 0
        out = capsys.readouterr().out
        assert "health" in out and "OK" in out

    def test_scrub_missing_index_is_usage_error(self, tmp_path, capsys):
        assert main(["scrub", str(tmp_path / "no.idx")]) == 2

    def test_corruption_exits_3_everywhere(self, guarded_index, capsys):
        # Checkpoint first so the WAL cannot repair the damage.
        assert main(["checkpoint", guarded_index]) == 0
        with open(guarded_index, "r+b") as handle:
            handle.seek(256 * 3)
            handle.write(b"\x00" * 256)
        capsys.readouterr()
        assert main(["scrub", guarded_index]) == 3
        out = capsys.readouterr().out
        assert "CORRUPT" in out
        assert main(["query", guarded_index, "//book/title"]) == 3
        err = capsys.readouterr().err
        assert "PageCorruptionError" in err and "Traceback" not in err

    def test_scrub_repairs_from_wal(self, guarded_index, capsys):
        with open(guarded_index, "r+b") as handle:
            handle.seek(256 * 3 + 11)
            byte = handle.read(1)
            handle.seek(-1, 1)
            handle.write(bytes([byte[0] ^ 0x20]))
        assert main(["scrub", guarded_index]) == 0
        out = capsys.readouterr().out
        assert "repaired    : 1" in out
        assert main(["query", guarded_index, "//book/title"]) == 0

    def test_garbage_superblock_exits_3(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.idx"
        bogus.write_bytes(b"not an index" * 100)
        assert main(["query", str(bogus), "//a/b"]) == 3
        err = capsys.readouterr().err
        assert "error [" in err and "Traceback" not in err


class TestQueryBudget:
    def test_budget_candidates_degrades(self, built_index, capsys):
        assert main(["query", built_index, "//book[./author]/title",
                     "--budget-candidates", "0"]) == 0
        out = capsys.readouterr().out
        assert "approximate result" in out
        assert "superset" in out
        assert "degraded: candidates budget exhausted" in out

    def test_budget_filter_exhaustion_is_error(self, built_index,
                                               capsys):
        assert main(["query", built_index, "//book/title",
                     "--budget-range-queries", "0"]) == 1
        err = capsys.readouterr().err
        assert "error [budget]" in err and "Traceback" not in err

    def test_generous_budget_matches_exact(self, built_index, capsys):
        assert main(["query", built_index, "//book/title"]) == 0
        exact = capsys.readouterr().out
        assert main(["query", built_index, "//book/title",
                     "--budget-candidates", "1000",
                     "--budget-ms", "60000"]) == 0
        assert capsys.readouterr().out == exact


class TestBackendFlag:
    def test_query_backends_answer_identically(self, built_index, capsys):
        assert main(["query", built_index, "//book/title"]) == 0
        exact = capsys.readouterr().out
        for backend in ("mmap", "arena"):
            assert main(["query", built_index, "//book/title",
                         "--backend", backend]) == 0
            assert capsys.readouterr().out == exact, backend

    def test_stats_backend_flag(self, built_index, capsys):
        for backend in ("mmap", "arena"):
            assert main(["stats", built_index, "--backend", backend]) == 0
            out = capsys.readouterr().out
            assert "documents: 2" in out, backend

    def test_unknown_backend_is_usage_error(self, built_index, capsys):
        with pytest.raises(SystemExit) as caught:
            main(["query", built_index, "//a", "--backend", "floppy"])
        assert caught.value.code == 2


class TestScrubJson:
    def test_scrub_json_is_the_canonical_serializer(self, guarded_index,
                                                    capsys):
        # `prix scrub --json` and the server's /healthz share one
        # serializer: ScrubReport.to_json (docs/SERVING.md).
        import json

        from repro.storage import scrub_path
        assert main(["scrub", guarded_index, "--json"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out) == json.loads(
            scrub_path(guarded_index).to_json())

    def test_scrub_json_reports_corruption_with_exit_3(self, guarded_index,
                                                       capsys):
        import json
        assert main(["checkpoint", guarded_index]) == 0
        with open(guarded_index, "r+b") as handle:
            handle.seek(256 * 3)
            handle.write(b"\x00" * 256)
        capsys.readouterr()
        assert main(["scrub", guarded_index, "--json"]) == 3
        report = json.loads(capsys.readouterr().out)
        assert report["pages_corrupt"] != []


class TestServeParser:
    def test_serve_subcommand_is_registered(self):
        from repro.cli import make_parser
        args = make_parser().parse_args(
            ["serve", "x.idx", "--port", "0", "--backend", "arena",
             "--mount", "extra=y.idx", "--max-inflight", "4",
             "--budget-candidates", "100"])
        assert args.func.__name__ == "_cmd_serve"
        assert args.index == "x.idx"
        assert args.port == 0
        assert args.backend == "arena"
        assert args.mount == ["extra=y.idx"]
        assert args.max_inflight == 4

    def test_serve_defaults(self):
        from repro.cli import make_parser
        args = make_parser().parse_args(["serve", "x.idx"])
        assert args.port == 8399
        assert args.backend == "mmap"
