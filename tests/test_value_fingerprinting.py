"""Oversized-value fingerprinting tests.

Values longer than VALUE_LABEL_LIMIT are replaced in label space by a
prefix + SHA-256 fingerprint so they never overflow an index page; both
the data side and every query side must tokenize identically.
"""

from repro.baselines.region import StreamSet
from repro.baselines.twigstack import twig_stack
from repro.prix.index import PrixIndex
from repro.query.xpath import parse_xpath
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.xmlkit.parser import parse_document
from repro.xmlkit.tree import (VALUE_LABEL_LIMIT, value, sequence_label,
                               value_label)

LONG_A = "alpha " * 2000
LONG_B = "alpha " * 1999 + "omega!"


class TestTokenization:
    def test_short_values_unchanged(self):
        assert value_label("short") == "\x1fshort"

    def test_limit_boundary(self):
        at_limit = "x" * VALUE_LABEL_LIMIT
        assert value_label(at_limit) == "\x1f" + at_limit
        over = "x" * (VALUE_LABEL_LIMIT + 1)
        assert len(value_label(over)) < len(over)

    def test_fingerprints_distinguish(self):
        assert value_label(LONG_A) != value_label(LONG_B)

    def test_fingerprint_deterministic(self):
        assert value_label(LONG_A) == value_label(LONG_A)

    def test_sequence_label_uses_tokenizer(self):
        assert sequence_label(value(LONG_A)) == value_label(LONG_A)

    def test_fingerprint_idempotent(self):
        # Re-tokenizing a fingerprint token (as a rebuild would) must not
        # change it, or rebuilt indexes would stop matching old queries.
        token = value_label(LONG_A)[1:]
        assert value_label(token) == "\x1f" + token


class TestEndToEnd:
    def test_prix_matches_long_values(self):
        docs = [parse_document(f"<a><b>{LONG_A}</b></a>", 1),
                parse_document(f"<a><b>{LONG_B}</b></a>", 2)]
        index = PrixIndex.build(docs)
        matches = index.query(parse_xpath(f'//a[./b="{LONG_A}"]'))
        assert {m.doc_id for m in matches} == {1}

    def test_both_variants_agree(self):
        docs = [parse_document(f"<a><b>{LONG_A}</b></a>", 1)]
        index = PrixIndex.build(docs)
        pattern = parse_xpath(f'//a[./b="{LONG_A}"]')
        assert len(index.query(pattern, variant="rp")) == 1
        assert len(index.query(pattern, variant="ep")) == 1

    def test_twigstack_matches_long_values(self):
        docs = [parse_document(f"<a><b>{LONG_A}</b></a>", 1),
                parse_document(f"<a><b>{LONG_B}</b></a>", 2)]
        pool = BufferPool(Pager.in_memory())
        streams = StreamSet.build(docs, pool)
        matches, _ = twig_stack(parse_xpath(f'//a[./b="{LONG_A}"]'),
                                streams)
        assert {doc for doc, _ in matches} == {1}

    def test_rebuild_preserves_long_value_queries(self):
        docs = [parse_document(f"<a><b>{LONG_A}</b></a>", 1)]
        index = PrixIndex.build(docs)
        fresh = index.rebuilt()
        assert len(fresh.query(parse_xpath(f'//a[./b="{LONG_A}"]'))) == 1
