"""Record store tests: packing, spanning, I/O cost."""

from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.storage.records import RecordStore


@contextmanager
def open_store(page_size=128):
    with BufferPool(Pager.in_memory(page_size=page_size)) as pool:
        yield RecordStore(pool), pool


class TestBasics:
    def test_roundtrip(self):
        with open_store() as (store, _):
            rid = store.append(b"hello world")
            assert store.read(rid) == b"hello world"

    def test_empty_blob(self):
        with open_store() as (store, _):
            rid = store.append(b"")
            assert store.read(rid) == b""

    def test_non_bytes_rejected(self):
        with open_store() as (store, _):
            with pytest.raises(TypeError):
                store.append("text")

    def test_many_records_roundtrip(self):
        with open_store() as (store, _):
            blobs = [bytes([i]) * (i % 40) for i in range(100)]
            rids = [store.append(blob) for blob in blobs]
            for rid, blob in zip(rids, blobs):
                assert store.read(rid) == blob


class TestPacking:
    def test_small_records_share_pages(self):
        with open_store(page_size=128) as (store, pool):
            rids = [store.append(b"x" * 10) for _ in range(10)]
            pages = {rid[0] for rid in rids}
            assert len(pages) == 1  # 10 x 10 bytes pack into one 128B page

    def test_packed_reads_cost_one_page(self):
        with open_store(page_size=128) as (store, pool):
            rids = [store.append(b"y" * 10) for _ in range(8)]
            pool.flush_and_clear()
            before = pool.stats.physical_reads
            for rid in rids:
                store.read(rid)
            assert pool.stats.physical_reads - before == 1

    def test_pages_for_small(self):
        with open_store(page_size=128) as (store, _):
            rid = store.append(b"z" * 10)
            assert store.pages_for(rid) == 1


class TestSpanning:
    def test_large_record_spans_pages(self):
        with open_store(page_size=128) as (store, _):
            blob = bytes(range(256)) + b"tail" * 30
            rid = store.append(blob)
            assert store.read(rid) == blob
            assert store.pages_for(rid) == -(-len(blob) // 128)

    def test_mixed_sizes(self):
        with open_store(page_size=128) as (store, _):
            small = store.append(b"s" * 5)
            big = store.append(b"B" * 1000)
            small2 = store.append(b"t" * 5)
            assert store.read(small) == b"s" * 5
            assert store.read(big) == b"B" * 1000
            assert store.read(small2) == b"t" * 5

    def test_exact_page_size_record(self):
        with open_store(page_size=128) as (store, _):
            rid = store.append(b"e" * 128)
            assert store.read(rid) == b"e" * 128
            assert store.pages_for(rid) == 1


@settings(max_examples=50, deadline=None)
@given(st.lists(st.binary(max_size=400), max_size=30))
def test_record_store_roundtrip_property(blobs):
    with open_store(page_size=128) as (store, _):
        rids = [store.append(blob) for blob in blobs]
        for rid, blob in zip(rids, blobs):
            assert store.read(rid) == blob
