"""XPath-subset parser tests, covering every Table 3 query form."""

import pytest

from repro.query.twig import Axis
from repro.query.xpath import XPathSyntaxError, parse_xpath


def shape(pattern):
    """(label, axis, is_value, parent-label) for every node, preorder."""
    out = []
    for node in pattern.root.iter_subtree():
        out.append((node.label, node.axis.value, node.is_value,
                    node.parent.label if node.parent else None))
    return out


class TestPaths:
    def test_descendant_path(self):
        pattern = parse_xpath("//a/b")
        assert not pattern.absolute
        assert shape(pattern) == [("a", "/", False, None),
                                  ("b", "/", False, "a")]

    def test_absolute_path(self):
        pattern = parse_xpath("/a/b")
        assert pattern.absolute

    def test_bare_name_is_absolute(self):
        pattern = parse_xpath("book/title")
        assert pattern.absolute
        assert pattern.root.label == "book"

    def test_descendant_axis_inside(self):
        pattern = parse_xpath("//a//b")
        assert shape(pattern)[1] == ("b", "//", False, "a")

    def test_star_step(self):
        pattern = parse_xpath("//a/*/b")
        labels = [n.label for n in pattern.root.iter_subtree()]
        assert labels == ["a", "*", "b"]
        assert pattern.root.children[0].is_star


class TestPredicates:
    def test_existence_predicate(self):
        pattern = parse_xpath("//www[./editor]/url")
        assert shape(pattern) == [
            ("www", "/", False, None),
            ("editor", "/", False, "www"),
            ("url", "/", False, "www")]

    def test_value_predicate(self):
        pattern = parse_xpath('//Entry[./Keyword="Rhizomelic"]')
        keyword = pattern.root.children[0]
        assert keyword.label == "Keyword"
        literal = keyword.children[0]
        assert literal.is_value and literal.label == "Rhizomelic"

    def test_text_function(self):
        pattern = parse_xpath('//title[text()="Semantic Analysis Patterns"]')
        literal = pattern.root.children[0]
        assert literal.is_value
        assert literal.label == "Semantic Analysis Patterns"

    def test_two_predicates(self):
        pattern = parse_xpath(
            '//inproceedings[./author="Jim Gray"][./year="1990"]')
        assert [c.label for c in pattern.root.children] == ["author", "year"]
        assert [c.children[0].label for c in pattern.root.children] == [
            "Jim Gray", "1990"]

    def test_descendant_predicate(self):
        pattern = parse_xpath("//Entry[.//Author]//from")
        author = pattern.root.children[0]
        assert author.axis is Axis.DESCENDANT
        from_node = pattern.root.children[1]
        assert from_node.axis is Axis.DESCENDANT

    def test_predicate_without_dot(self):
        pattern = parse_xpath('//a[b="v"]')
        assert pattern.root.children[0].label == "b"

    def test_nested_path_predicate(self):
        pattern = parse_xpath('book[author//name="John"]/title')
        author = pattern.root.children[0]
        name = author.children[0]
        assert name.axis is Axis.DESCENDANT
        assert name.children[0].is_value
        assert pattern.root.children[1].label == "title"

    def test_single_quotes(self):
        pattern = parse_xpath("//a[./b='x y']")
        assert pattern.root.children[0].children[0].label == "x y"


class TestTable3QueriesParse:
    @pytest.mark.parametrize("xpath", [
        '//inproceedings[./author="Jim Gray"][./year="1990"]',
        "//www[./editor]/url",
        '//title[text()="Semantic Analysis Patterns"]',
        '//Entry[./Keyword="Rhizomelic"]',
        '//Entry/Ref[./Author="Mueller P"][./Author="Keller M"]',
        '//Entry[./Org="Piroplasmida"][.//Author]//from',
        "//S//NP/SYM",
        "//NP[./RBR_OR_JJR]/PP",
        "//NP/PP/NP[./NNS_OR_NN][./NN]",
    ])
    def test_parses(self, xpath):
        pattern = parse_xpath(xpath)
        assert pattern.source == xpath
        assert pattern.root.label


class TestPatternIntrospection:
    def test_has_values(self):
        assert parse_xpath('//a[./b="x"]').has_values()
        assert not parse_xpath("//a/b").has_values()

    def test_has_wildcards(self):
        assert parse_xpath("//a//b").has_wildcards()
        assert parse_xpath("//a/*/b").has_wildcards()
        assert not parse_xpath("/a/b").has_wildcards()

    def test_branch_count(self):
        assert parse_xpath("//a[./b]/c").branch_count() == 1
        assert parse_xpath("//a/b").branch_count() == 0


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "   ", "//", "//a[", "//a]", "//a[=]", '//a[./b=]',
        "//a[.]", "//a/", "//a[text()]", '//a"x"', "//a[./b='x'",
    ])
    def test_rejected(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)

    def test_star_root_rejected(self):
        with pytest.raises(ValueError):
            parse_xpath("//*")
